"""Gradient-descent optimisers (SGD, Adam, AdamW) for the reproduction.

Each optimiser owns a list of parameters and implements ``step()`` /
``zero_grad()`` mirroring the ``torch.optim`` interface.  Parameters whose
``requires_grad`` flag is ``False`` or whose gradient is ``None`` are skipped,
which is how the federated clients implement expert-only / frozen-expert
updates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .nn import Parameter


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, params: Iterable[Parameter]) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.params:
            if not param.requires_grad or param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                buf = self._velocity.get(id(param))
                if buf is None:
                    buf = np.zeros_like(param.data)
                buf = self.momentum * buf + grad
                self._velocity[id(param)] = buf
                grad = buf
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for param in self.params:
            if not param.requires_grad or param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad ** 2
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / (1 - self.beta1 ** self._t)
            v_hat = v / (1 - self.beta2 ** self._t)
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def step(self) -> None:
        if self.weight_decay:
            for param in self.params:
                if param.requires_grad and param.grad is not None:
                    param.data -= self.lr * self.weight_decay * param.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Clip the global gradient norm of ``params`` to ``max_norm``.

    Returns the norm before clipping, which callers use as the gradient
    magnitude signal for expert utility.
    """
    params = [p for p in params if p.requires_grad and p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if max_norm > 0 and total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total
