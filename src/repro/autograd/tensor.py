"""Reverse-mode automatic differentiation over NumPy arrays.

This module provides the :class:`Tensor` class used throughout the
reproduction in place of ``torch.Tensor``.  A tensor wraps a NumPy array,
remembers the operation that produced it, and can back-propagate gradients to
its inputs via :meth:`Tensor.backward`.

The design follows the classic tape-less "define-by-run" approach: each
operation returns a new tensor whose ``_backward`` closure knows how to push
the output gradient onto the operands.  ``backward()`` runs a topological sort
over the recorded graph and calls those closures in reverse order.

Only the operations needed by the MoE transformer substrate are implemented,
but they are implemented completely (full broadcasting support, stable
softmax/log-softmax, fancy-index gather/scatter for embeddings and expert
routing).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_grad_enabled = True

_default_dtype: np.dtype = np.dtype(np.float64)

#: dtypes the tensor engine may be switched to
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def get_default_dtype() -> np.dtype:
    """Return the dtype new tensors are created with (when not inferable)."""
    return _default_dtype


def set_default_dtype(dtype) -> None:
    """Set the global default floating dtype of the tensor engine.

    ``float64`` (the historical default) is best for numerics tests;
    ``float32`` halves memory traffic and roughly doubles GEMM throughput,
    and is what the perf harness and training benchmarks use.
    """
    dtype = np.dtype(dtype)
    if dtype not in SUPPORTED_DTYPES:
        raise ValueError(f"unsupported default dtype {dtype}; supported: float32, float64")
    global _default_dtype
    _default_dtype = dtype


class default_dtype:
    """Context manager that temporarily switches the default dtype.

    Models built inside ``with default_dtype("float32"):`` have float32
    parameters, and every downstream op preserves that dtype (floating-point
    array inputs are never silently up- or down-cast).
    """

    def __init__(self, dtype) -> None:
        self._dtype = np.dtype(dtype)
        if self._dtype not in SUPPORTED_DTYPES:
            raise ValueError(f"unsupported default dtype {self._dtype}; supported: float32, float64")

    def __enter__(self) -> "default_dtype":
        global _default_dtype
        self._prev = _default_dtype
        _default_dtype = self._dtype
        return self

    def __exit__(self, *exc) -> None:
        global _default_dtype
        _default_dtype = self._prev


class no_grad:
    """Context manager that disables gradient recording.

    Mirrors ``torch.no_grad``: inside the block all produced tensors have
    ``requires_grad=False`` and no graph is recorded, which keeps profiling
    and evaluation passes cheap.
    """

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc) -> None:
        global _grad_enabled
        _grad_enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether gradient recording is currently enabled."""
    return _grad_enabled


def _as_array(data: ArrayLike, dtype=None) -> np.ndarray:
    """Coerce ``data`` to a floating NumPy array.

    Floating-point arrays keep their dtype (so a float32 model stays float32
    end-to-end); everything else is converted to ``dtype`` or, when that is
    ``None``, to the global default dtype (see :func:`set_default_dtype`).
    """
    if dtype is None:
        if isinstance(data, np.ndarray) and data.dtype.kind == "f":
            return data
        if isinstance(data, np.generic) and data.dtype.kind == "f":
            # NumPy scalar (e.g. the result of ndarray.sum()) — keep its dtype.
            return np.asarray(data)
        dtype = _default_dtype
    if isinstance(data, np.ndarray):
        if data.dtype == dtype:
            return data
        return data.astype(dtype)
    return np.asarray(data, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    NumPy broadcasting may have expanded an operand; the gradient flowing back
    must be summed over the broadcast dimensions to match the operand's
    original shape.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over dimensions that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Tuple["Tensor", ...] = (),
        name: str = "",
    ) -> None:
        self.data: np.ndarray = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and _grad_enabled
        self._backward: Optional[Callable[[], None]] = None
        self._prev: Tuple[Tensor, ...] = _prev if _grad_enabled else ()
        self.name = name

    # ------------------------------------------------------------------ meta
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------- graph glue
    def _make_child(self, data: np.ndarray, parents: Tuple["Tensor", ...]) -> "Tensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _prev=parents if requires else ())
        return out

    def _accumulate(self, grad: np.ndarray, owned: bool = False) -> None:
        """Add ``grad`` to this tensor's gradient.

        ``owned=True`` asserts that ``grad`` is a freshly-allocated array no
        other tensor holds a reference to, letting the first contribution be
        adopted without a defensive copy.  Arrays that may alias another
        tensor's gradient (e.g. an unreduced ``out.grad`` passed through, or a
        view of it) must keep ``owned=False``.
        """
        if not self.requires_grad:
            return
        if self.grad is None:
            if owned and isinstance(grad, np.ndarray) and grad.dtype == self.data.dtype:
                self.grad = grad
            else:
                # First contribution: one copy instead of zeros_like + add.
                self.grad = np.array(grad, dtype=self.data.dtype)
        else:
            self.grad += grad

    # --------------------------------------------------------------- backward
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of some downstream scalar with respect to this tensor.
            Defaults to ones (only valid for scalar tensors, matching the
            PyTorch convention).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ----------------------------------------------------------- constructors
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False, dtype=None) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=dtype or _default_dtype), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False, dtype=None) -> "Tensor":
        return Tensor(np.ones(shape, dtype=dtype or _default_dtype), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, requires_grad: bool = False, rng: Optional[np.random.Generator] = None,
              dtype=None) -> "Tensor":
        rng = rng or np.random.default_rng()
        # Always draw in float64 and cast so that the random stream (and hence
        # seeded model initialisation) is identical across dtypes.
        values = rng.standard_normal(shape).astype(dtype or _default_dtype, copy=False)
        return Tensor(values, requires_grad=requires_grad)

    # ------------------------------------------------------------- arithmetic
    def _wrap_operand(self, other: ArrayLike) -> "Tensor":
        """Coerce a binary-op operand to a Tensor.

        Python scalars (and other non-float data) adopt *this* tensor's dtype
        so that e.g. ``float32_tensor * 2.0`` stays float32 instead of being
        promoted through a float64 wrapper array.
        """
        if isinstance(other, Tensor):
            return other
        if isinstance(other, np.ndarray) and other.dtype.kind == "f":
            return Tensor(other)
        return Tensor(np.asarray(other, dtype=self.data.dtype))

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap_operand(other)
        out = self._make_child(self.data + other.data, (self, other))

        def _backward() -> None:
            if self.requires_grad:
                grad = _unbroadcast(out.grad, self.shape)
                self._accumulate(grad, owned=grad is not out.grad)
            if other.requires_grad:
                grad = _unbroadcast(out.grad, other.shape)
                other._accumulate(grad, owned=grad is not out.grad)

        out._backward = _backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = self._make_child(-self.data, (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(-out.grad, owned=True)

        out._backward = _backward
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._wrap_operand(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._wrap_operand(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap_operand(other)
        out = self._make_child(self.data * other.data, (self, other))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad * other.data, self.shape), owned=True)
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad * self.data, other.shape), owned=True)

        out._backward = _backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._wrap_operand(other)
        out = self._make_child(self.data / other.data, (self, other))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad / other.data, self.shape), owned=True)
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-out.grad * self.data / (other.data ** 2), other.shape),
                    owned=True,
                )

        out._backward = _backward
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._wrap_operand(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        # np.power is an elementwise transcendental and dominates small-model
        # profiles (rms_norm calls ** 0.5 on every block); route the common
        # exponents through their dedicated, much cheaper ufuncs.
        if exponent == 0.5:
            out = self._make_child(np.sqrt(self.data), (self,))

            def _backward_sqrt() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * 0.5 / out.data, owned=True)

            out._backward = _backward_sqrt
            return out
        if exponent == 2:
            out = self._make_child(np.square(self.data), (self,))

            def _backward_square() -> None:
                if self.requires_grad:
                    self._accumulate(out.grad * 2.0 * self.data, owned=True)

            out._backward = _backward_square
            return out
        out = self._make_child(self.data ** exponent, (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1), owned=True)

        out._backward = _backward
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._wrap_operand(other)
        out = self._make_child(self.data @ other.data, (self, other))

        def _backward() -> None:
            if self.requires_grad:
                if other.data.ndim >= 2:
                    grad_self = out.grad @ np.swapaxes(other.data, -1, -2)
                else:
                    grad_self = np.outer(out.grad, other.data) if self.data.ndim > 1 else out.grad * other.data
                self._accumulate(_unbroadcast(grad_self, self.shape), owned=True)
            if other.requires_grad:
                if self.data.ndim >= 2:
                    grad_other = np.swapaxes(self.data, -1, -2) @ out.grad
                else:
                    grad_other = np.outer(self.data, out.grad) if other.data.ndim > 1 else self.data * out.grad
                other._accumulate(_unbroadcast(grad_other, other.shape), owned=True)

        out._backward = _backward
        return out

    # -------------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make_child(self.data.sum(axis=axis, keepdims=keepdims), (self,))

        def _backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                shape = list(out.grad.shape)
                for a in sorted(axes):
                    shape.insert(a, 1)
                grad = grad.reshape(shape)
            self._accumulate(np.broadcast_to(grad, self.shape).copy(), owned=True)

        out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make_child(out_data, (self,))

        def _backward() -> None:
            if not self.requires_grad:
                return
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            grad = out.grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                shape = list(grad.shape)
                for a in sorted(axes):
                    shape.insert(a, 1)
                grad = grad.reshape(shape)
            self._accumulate(mask * grad, owned=True)

        out._backward = _backward
        return out

    # ----------------------------------------------------------- element-wise
    def exp(self) -> "Tensor":
        out = self._make_child(np.exp(self.data), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out.data, owned=True)

        out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = self._make_child(np.log(self.data), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad / self.data, owned=True)

        out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out = self._make_child(np.tanh(self.data), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (1.0 - out.data ** 2), owned=True)

        out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make_child(value, (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out.data * (1.0 - out.data), owned=True)

        out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        out = self._make_child(np.maximum(self.data, 0.0), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (self.data > 0), owned=True)

        out._backward = _backward
        return out

    def silu(self) -> "Tensor":
        """SiLU / swish activation, used by LLaMA-style expert FFNs."""
        sig = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make_child(self.data * sig, (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (sig * (1.0 + self.data * (1.0 - sig))), owned=True)

        out._backward = _backward
        return out

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        c = np.sqrt(2.0 / np.pi)
        inner = c * (self.data + 0.044715 * self.data ** 3)
        tanh_inner = np.tanh(inner)
        value = 0.5 * self.data * (1.0 + tanh_inner)
        out = self._make_child(value, (self,))

        def _backward() -> None:
            if self.requires_grad:
                d_inner = c * (1.0 + 3 * 0.044715 * self.data ** 2)
                deriv = 0.5 * (1.0 + tanh_inner) + 0.5 * self.data * (1.0 - tanh_inner ** 2) * d_inner
                self._accumulate(out.grad * deriv, owned=True)

        out._backward = _backward
        return out

    # -------------------------------------------------------- shape operations
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make_child(self.data.reshape(shape), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.reshape(self.shape))

        out._backward = _backward
        return out

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        out = self._make_child(self.data.transpose(axes), (self,))
        inverse = np.argsort(axes)

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.transpose(inverse))

        out._backward = _backward
        return out

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        out = self._make_child(np.swapaxes(self.data, axis1, axis2), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(np.swapaxes(out.grad, axis1, axis2))

        out._backward = _backward
        return out

    def __getitem__(self, index) -> "Tensor":
        out = self._make_child(self.data[index], (self,))

        def _backward() -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, index, out.grad)
                self._accumulate(grad, owned=True)

        out._backward = _backward
        return out

    # ----------------------------------------------------- composite functions
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        value = exp / exp.sum(axis=axis, keepdims=True)
        out = self._make_child(value, (self,))

        def _backward() -> None:
            if self.requires_grad:
                s = out.data
                dot = (out.grad * s).sum(axis=axis, keepdims=True)
                self._accumulate(s * (out.grad - dot), owned=True)

        out._backward = _backward
        return out

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        value = shifted - logsumexp
        out = self._make_child(value, (self,))

        def _backward() -> None:
            if self.requires_grad:
                softmax = np.exp(out.data)
                grad_sum = out.grad.sum(axis=axis, keepdims=True)
                self._accumulate(out.grad - softmax * grad_sum, owned=True)

        out._backward = _backward
        return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = _grad_enabled and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _prev=tuple(tensors) if requires else ())

    def _backward() -> None:
        grads = np.split(out.grad, len(tensors), axis=axis)
        for tensor, grad in zip(tensors, grads):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(grad, axis=axis))

    out._backward = _backward
    return out


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis with gradient support."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = _grad_enabled and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _prev=tuple(tensors) if requires else ())
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def _backward() -> None:
        for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * out.grad.ndim
                slicer[axis] = slice(start, end)
                tensor._accumulate(out.grad[tuple(slicer)])

    out._backward = _backward
    return out


def scatter_rows(src: Tensor, rows: np.ndarray, num_rows: int) -> Tensor:
    """Scatter-add rows of ``src`` into a new ``(num_rows, dim)`` tensor.

    ``out[rows[i]] += src[i]`` for every row of ``src``.  The backward pass
    gathers the output gradient back to the source rows, which makes this the
    building block for differentiable token → expert dispatch/combine.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.ndim != 1 or rows.shape[0] != src.data.shape[0]:
        raise ValueError("rows must be a 1-D index array matching src's first dimension")
    data = np.zeros((num_rows,) + src.data.shape[1:], dtype=src.data.dtype)
    np.add.at(data, rows, src.data)
    requires = _grad_enabled and src.requires_grad
    out = Tensor(data, requires_grad=requires, _prev=(src,) if requires else ())

    def _backward() -> None:
        if src.requires_grad:
            src._accumulate(out.grad[rows], owned=True)

    out._backward = _backward
    return out


def expand_rows(src: Tensor, repeats: int) -> Tensor:
    """Repeat every row of ``src`` ``repeats`` times: ``out[i] = src[i // repeats]``.

    The backward pass is a reshape + sum over the repeat axis — no scatter —
    which makes this the cheap way to expand ``(tokens, d)`` hidden states to
    ``(tokens * top_k, d)`` per-assignment rows in the batched MoE dispatch.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    data = np.repeat(src.data, repeats, axis=0)
    requires = _grad_enabled and src.requires_grad
    out = Tensor(data, requires_grad=requires, _prev=(src,) if requires else ())

    def _backward() -> None:
        if src.requires_grad:
            shape = (src.data.shape[0], repeats) + src.data.shape[1:]
            src._accumulate(out.grad.reshape(shape).sum(axis=1), owned=True)

    out._backward = _backward
    return out


def take_rows(src: Tensor, rows: np.ndarray) -> Tensor:
    """Gather ``src[rows]`` where ``rows`` contains **unique** indices.

    Unlike ``src[rows]`` (whose backward must scatter-*add* with ``np.add.at``
    to handle duplicates), the uniqueness contract lets the backward pass use
    a plain fancy-index assignment, which is an order of magnitude faster.
    The caller is responsible for uniqueness; duplicated rows silently drop
    gradient contributions.
    """
    rows = np.asarray(rows, dtype=np.int64)
    data = src.data[rows]
    requires = _grad_enabled and src.requires_grad
    out = Tensor(data, requires_grad=requires, _prev=(src,) if requires else ())

    def _backward() -> None:
        if src.requires_grad:
            grad = np.zeros_like(src.data)
            grad[rows] = out.grad
            src._accumulate(grad, owned=True)

    out._backward = _backward
    return out


def place_rows(src: Tensor, rows: np.ndarray, num_rows: int) -> Tensor:
    """Scatter rows of ``src`` into a zero tensor: ``out[rows[i]] = src[i]``.

    ``rows`` must contain **unique** destinations (this is assignment, not
    accumulation — see :func:`scatter_rows`/:func:`index_add` for the
    duplicate-safe variants).  The backward pass is a plain gather.  Used to
    build the padded per-expert workspace of the batched MoE dispatch.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.ndim != 1 or rows.shape[0] != src.data.shape[0]:
        raise ValueError("rows must be a 1-D index array matching src's first dimension")
    data = np.zeros((num_rows,) + src.data.shape[1:], dtype=src.data.dtype)
    data[rows] = src.data
    requires = _grad_enabled and src.requires_grad
    out = Tensor(data, requires_grad=requires, _prev=(src,) if requires else ())

    def _backward() -> None:
        if src.requires_grad:
            src._accumulate(out.grad[rows], owned=True)

    out._backward = _backward
    return out


def index_add(base: Tensor, rows: np.ndarray, src: Tensor) -> Tensor:
    """Row-wise scatter-add of ``src`` into ``base``: ``out[rows[i]] += src[i]``.

    Unlike :func:`scatter_rows`, which always materialises a fresh zero-filled
    output, ``index_add`` accumulates **in place** into ``base``'s buffer and
    returns a tensor sharing it.  ``base`` must therefore be a tensor the
    caller created for this purpose (e.g. ``Tensor.zeros``) and must not be
    reused afterwards.  This is the combine primitive of the batched MoE
    dispatch path: all routed-token outputs are accumulated with a single
    ``np.add.at`` instead of one full-size temporary per expert.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.ndim != 1 or rows.shape[0] != src.data.shape[0]:
        raise ValueError("rows must be a 1-D index array matching src's first dimension")
    if base.data.shape[1:] != src.data.shape[1:]:
        raise ValueError("base and src must agree on trailing dimensions")
    np.add.at(base.data, rows, src.data)
    requires = _grad_enabled and (base.requires_grad or src.requires_grad)
    out = Tensor(base.data, requires_grad=requires, _prev=(base, src) if requires else ())

    def _backward() -> None:
        if base.requires_grad:
            base._accumulate(out.grad)
        if src.requires_grad:
            src._accumulate(out.grad[rows], owned=True)

    out._backward = _backward
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Element-wise select with gradient flow to both branches."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a.data, b.data)
    requires = _grad_enabled and (a.requires_grad or b.requires_grad)
    out = Tensor(data, requires_grad=requires, _prev=(a, b) if requires else ())

    def _backward() -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(out.grad * cond, a.shape), owned=True)
        if b.requires_grad:
            b._accumulate(_unbroadcast(out.grad * (~cond), b.shape), owned=True)

    out._backward = _backward
    return out
