"""Reverse-mode automatic differentiation over NumPy arrays.

This module provides the :class:`Tensor` class used throughout the
reproduction in place of ``torch.Tensor``.  A tensor wraps a NumPy array,
remembers the operation that produced it, and can back-propagate gradients to
its inputs via :meth:`Tensor.backward`.

The design follows the classic tape-less "define-by-run" approach: each
operation returns a new tensor whose ``_backward`` closure knows how to push
the output gradient onto the operands.  ``backward()`` runs a topological sort
over the recorded graph and calls those closures in reverse order.

Only the operations needed by the MoE transformer substrate are implemented,
but they are implemented completely (full broadcasting support, stable
softmax/log-softmax, fancy-index gather/scatter for embeddings and expert
routing).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_grad_enabled = True


class no_grad:
    """Context manager that disables gradient recording.

    Mirrors ``torch.no_grad``: inside the block all produced tensors have
    ``requires_grad=False`` and no graph is recorded, which keeps profiling
    and evaluation passes cheap.
    """

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc) -> None:
        global _grad_enabled
        _grad_enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether gradient recording is currently enabled."""
    return _grad_enabled


def _as_array(data: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(data, np.ndarray):
        if data.dtype == dtype:
            return data
        return data.astype(dtype)
    return np.asarray(data, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    NumPy broadcasting may have expanded an operand; the gradient flowing back
    must be summed over the broadcast dimensions to match the operand's
    original shape.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over dimensions that were 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _prev: Tuple["Tensor", ...] = (),
        name: str = "",
    ) -> None:
        self.data: np.ndarray = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and _grad_enabled
        self._backward: Optional[Callable[[], None]] = None
        self._prev: Tuple[Tensor, ...] = _prev if _grad_enabled else ()
        self.name = name

    # ------------------------------------------------------------------ meta
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------- graph glue
    def _make_child(self, data: np.ndarray, parents: Tuple["Tensor", ...]) -> "Tensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _prev=parents if requires else ())
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    # --------------------------------------------------------------- backward
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of some downstream scalar with respect to this tensor.
            Defaults to ones (only valid for scalar tensors, matching the
            PyTorch convention).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward()

    # ----------------------------------------------------------- constructors
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, requires_grad: bool = False, rng: Optional[np.random.Generator] = None) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)

    # ------------------------------------------------------------- arithmetic
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data + other.data, (self, other))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad, other.shape))

        out._backward = _backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = self._make_child(-self.data, (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(-out.grad)

        out._backward = _backward
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data * other.data, (self, other))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

        out._backward = _backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data / other.data, (self, other))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-out.grad * self.data / (other.data ** 2), other.shape)
                )

        out._backward = _backward
        return out

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out = self._make_child(self.data ** exponent, (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        out._backward = _backward
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = self._make_child(self.data @ other.data, (self, other))

        def _backward() -> None:
            if self.requires_grad:
                if other.data.ndim >= 2:
                    grad_self = out.grad @ np.swapaxes(other.data, -1, -2)
                else:
                    grad_self = np.outer(out.grad, other.data) if self.data.ndim > 1 else out.grad * other.data
                self._accumulate(_unbroadcast(grad_self, self.shape))
            if other.requires_grad:
                if self.data.ndim >= 2:
                    grad_other = np.swapaxes(self.data, -1, -2) @ out.grad
                else:
                    grad_other = np.outer(self.data, out.grad) if other.data.ndim > 1 else self.data * out.grad
                other._accumulate(_unbroadcast(grad_other, other.shape))

        out._backward = _backward
        return out

    # -------------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make_child(self.data.sum(axis=axis, keepdims=keepdims), (self,))

        def _backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                shape = list(out.grad.shape)
                for a in sorted(axes):
                    shape.insert(a, 1)
                grad = grad.reshape(shape)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make_child(out_data, (self,))

        def _backward() -> None:
            if not self.requires_grad:
                return
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            grad = out.grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                shape = list(grad.shape)
                for a in sorted(axes):
                    shape.insert(a, 1)
                grad = grad.reshape(shape)
            self._accumulate(mask * grad)

        out._backward = _backward
        return out

    # ----------------------------------------------------------- element-wise
    def exp(self) -> "Tensor":
        out = self._make_child(np.exp(self.data), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out.data)

        out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = self._make_child(np.log(self.data), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad / self.data)

        out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out = self._make_child(np.tanh(self.data), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (1.0 - out.data ** 2))

        out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make_child(value, (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out.data * (1.0 - out.data))

        out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        out = self._make_child(np.maximum(self.data, 0.0), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (self.data > 0))

        out._backward = _backward
        return out

    def silu(self) -> "Tensor":
        """SiLU / swish activation, used by LLaMA-style expert FFNs."""
        sig = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make_child(self.data * sig, (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (sig * (1.0 + self.data * (1.0 - sig))))

        out._backward = _backward
        return out

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        c = np.sqrt(2.0 / np.pi)
        inner = c * (self.data + 0.044715 * self.data ** 3)
        tanh_inner = np.tanh(inner)
        value = 0.5 * self.data * (1.0 + tanh_inner)
        out = self._make_child(value, (self,))

        def _backward() -> None:
            if self.requires_grad:
                d_inner = c * (1.0 + 3 * 0.044715 * self.data ** 2)
                deriv = 0.5 * (1.0 + tanh_inner) + 0.5 * self.data * (1.0 - tanh_inner ** 2) * d_inner
                self._accumulate(out.grad * deriv)

        out._backward = _backward
        return out

    # -------------------------------------------------------- shape operations
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make_child(self.data.reshape(shape), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.reshape(self.shape))

        out._backward = _backward
        return out

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        out = self._make_child(self.data.transpose(axes), (self,))
        inverse = np.argsort(axes)

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.transpose(inverse))

        out._backward = _backward
        return out

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        out = self._make_child(np.swapaxes(self.data, axis1, axis2), (self,))

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(np.swapaxes(out.grad, axis1, axis2))

        out._backward = _backward
        return out

    def __getitem__(self, index) -> "Tensor":
        out = self._make_child(self.data[index], (self,))

        def _backward() -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, index, out.grad)
                self._accumulate(grad)

        out._backward = _backward
        return out

    # ----------------------------------------------------- composite functions
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        value = exp / exp.sum(axis=axis, keepdims=True)
        out = self._make_child(value, (self,))

        def _backward() -> None:
            if self.requires_grad:
                s = out.data
                dot = (out.grad * s).sum(axis=axis, keepdims=True)
                self._accumulate(s * (out.grad - dot))

        out._backward = _backward
        return out

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        value = shifted - logsumexp
        out = self._make_child(value, (self,))

        def _backward() -> None:
            if self.requires_grad:
                softmax = np.exp(out.data)
                grad_sum = out.grad.sum(axis=axis, keepdims=True)
                self._accumulate(out.grad - softmax * grad_sum)

        out._backward = _backward
        return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = _grad_enabled and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _prev=tuple(tensors) if requires else ())

    def _backward() -> None:
        grads = np.split(out.grad, len(tensors), axis=axis)
        for tensor, grad in zip(tensors, grads):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(grad, axis=axis))

    out._backward = _backward
    return out


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis with gradient support."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = _grad_enabled and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _prev=tuple(tensors) if requires else ())
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def _backward() -> None:
        for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * out.grad.ndim
                slicer[axis] = slice(start, end)
                tensor._accumulate(out.grad[tuple(slicer)])

    out._backward = _backward
    return out


def scatter_rows(src: Tensor, rows: np.ndarray, num_rows: int) -> Tensor:
    """Scatter-add rows of ``src`` into a new ``(num_rows, dim)`` tensor.

    ``out[rows[i]] += src[i]`` for every row of ``src``.  The backward pass
    gathers the output gradient back to the source rows, which makes this the
    building block for differentiable token → expert dispatch/combine.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.ndim != 1 or rows.shape[0] != src.data.shape[0]:
        raise ValueError("rows must be a 1-D index array matching src's first dimension")
    data = np.zeros((num_rows,) + src.data.shape[1:], dtype=src.data.dtype)
    np.add.at(data, rows, src.data)
    requires = _grad_enabled and src.requires_grad
    out = Tensor(data, requires_grad=requires, _prev=(src,) if requires else ())

    def _backward() -> None:
        if src.requires_grad:
            src._accumulate(out.grad[rows])

    out._backward = _backward
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Element-wise select with gradient flow to both branches."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a.data, b.data)
    requires = _grad_enabled and (a.requires_grad or b.requires_grad)
    out = Tensor(data, requires_grad=requires, _prev=(a, b) if requires else ())

    def _backward() -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(out.grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(out.grad * (~cond), b.shape))

    out._backward = _backward
    return out
