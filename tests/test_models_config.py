"""Tests for model configuration and full-scale architecture descriptors."""

import pytest

from repro.models import ARCHITECTURE_DESCRIPTORS, MoEModelConfig, get_preset, table1_rows
from repro.models.presets import deepseek_moe_mini, llama_moe_mini, tiny_moe


class TestMoEModelConfig:
    def test_defaults_are_valid(self):
        config = MoEModelConfig()
        assert config.experts_per_layer() == [8, 8, 8, 8]

    def test_per_layer_expert_list(self):
        config = MoEModelConfig(n_layers=3, num_experts=[2, 4, 8])
        assert config.experts_per_layer() == [2, 4, 8]
        assert config.total_experts == 14

    def test_per_layer_list_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            MoEModelConfig(n_layers=3, num_experts=[2, 4])

    def test_d_model_head_divisibility(self):
        with pytest.raises(ValueError):
            MoEModelConfig(d_model=30, n_heads=4)

    def test_top_k_cannot_exceed_experts(self):
        with pytest.raises(ValueError):
            MoEModelConfig(num_experts=2, top_k=3)

    def test_top_k_checked_per_layer(self):
        with pytest.raises(ValueError):
            MoEModelConfig(n_layers=2, num_experts=[8, 1], top_k=2)

    def test_zero_experts_rejected(self):
        with pytest.raises(ValueError):
            MoEModelConfig(n_layers=2, num_experts=[4, 0])

    def test_with_experts_returns_new_config(self):
        config = MoEModelConfig()
        custom = config.with_experts([2, 2, 2, 2])
        assert custom.experts_per_layer() == [2, 2, 2, 2]
        assert config.experts_per_layer() == [8, 8, 8, 8]

    def test_expert_parameter_count(self):
        config = MoEModelConfig(d_model=32, d_ff=64)
        assert config.expert_parameter_count() == 3 * 32 * 64

    def test_expert_fraction_dominates_for_many_experts(self):
        config = MoEModelConfig(d_model=32, d_ff=64, num_experts=16)
        assert config.expert_fraction() > 0.5

    def test_total_parameter_count_consistency(self):
        config = MoEModelConfig()
        total = config.total_parameter_count()
        assert total == config.dense_parameter_count() + \
            config.total_experts * config.expert_parameter_count()

    def test_head_dim(self):
        assert MoEModelConfig(d_model=32, n_heads=4).head_dim == 8


class TestPresets:
    def test_llama_mini_shape(self):
        config = llama_moe_mini()
        assert config.num_shared_experts == 0
        assert config.top_k == 2

    def test_deepseek_mini_has_shared_expert(self):
        config = deepseek_moe_mini()
        assert config.num_shared_experts == 1
        assert config.experts_per_layer()[0] == 16

    def test_tiny_preset_trainable_size(self):
        config = tiny_moe()
        assert config.total_parameter_count() < 100_000

    def test_get_preset_lookup(self):
        assert get_preset("tiny-moe").name == "tiny-moe"
        with pytest.raises(KeyError):
            get_preset("gpt-5")

    def test_preset_kwargs_forwarded(self):
        config = get_preset("llama-moe-mini", num_experts=4, n_layers=2)
        assert config.experts_per_layer() == [4, 4]


class TestArchitectureDescriptors:
    def test_table1_contains_all_five_models(self):
        rows = table1_rows()
        assert len(rows) == 5
        names = {row["model"] for row in rows}
        assert "LLaMA-MoE" in names and "Qwen2-MoE" in names

    def test_llama_moe_row_matches_paper(self):
        row = ARCHITECTURE_DESCRIPTORS["llama-moe"].row()
        assert row["layers"] == 32
        assert row["experts"] == 16
        assert row["params_B"] == pytest.approx(6.7, abs=0.1)
        assert row["size_GB"] == pytest.approx(13.48, abs=1.0)

    def test_deepseek_row_matches_paper(self):
        row = ARCHITECTURE_DESCRIPTORS["deepseek-moe"].row()
        assert row["layers"] == 28
        assert row["experts"] == 64
        assert row["size_GB"] == pytest.approx(32.77, abs=2.5)

    def test_sizes_monotonic_in_params(self):
        rows = sorted(table1_rows(), key=lambda r: r["params_B"])
        sizes = [r["size_GB"] for r in rows]
        assert sizes == sorted(sizes)
