"""Aggregation strategies, the sharded server, and the hierarchical topology."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm import Channel, StreamingAggregator
from repro.federated import (
    AggregationTree,
    CostAwareGrouping,
    ExpertUpdate,
    HierarchicalTopology,
    ParameterServer,
    RoundRobinGrouping,
    RunConfig,
    ShardedParameterServer,
    fedavg_states,
    make_server,
    make_topology,
)
from repro.federated.strategies import (
    AggregationStrategy,
    FedAvgStrategy,
    MedianStrategy,
    StalenessFedAvgStrategy,
    TrimmedMeanStrategy,
    available_strategies,
    get_strategy,
    register_strategy,
    staleness_discount,
    strategy_from_config,
)
from repro.models import MoETransformer
from repro.runtime import AsyncScheduler

from test_runtime import ConstantMethod, build_federation


def _states(rng, n, shapes=((3, 4), (4,))):
    return [
        {f"w{i}": rng.normal(size=shape) for i, shape in enumerate(shapes)}
        for _ in range(n)
    ]


# ------------------------------------------------------------------ registry
class TestRegistry:
    def test_builtin_strategies_registered(self):
        assert {"fedavg", "trimmed_mean", "median", "staleness_fedavg"} <= set(
            available_strategies())

    def test_get_strategy_by_name_and_instance(self):
        median = get_strategy("median")
        assert isinstance(median, MedianStrategy)
        assert get_strategy(median) is median

    def test_unknown_strategy_raises(self):
        with pytest.raises(KeyError, match="unknown aggregation strategy"):
            get_strategy("krum")

    def test_custom_strategy_registration(self):
        class FirstWins(AggregationStrategy):
            name = "first_wins"

            def make_accumulator(self):
                strategy = self

                class Acc:
                    def __init__(self):
                        self.count = 0
                        self.total_weight = 0.0
                        self.state = None

                    def add(self, state, weight, staleness=0):
                        if self.state is None:
                            self.state = state
                        self.count += 1
                        self.total_weight += weight

                    def finalize(self):
                        return self.state

                del strategy
                return Acc()

        register_strategy("first_wins", FirstWins)
        try:
            rng = np.random.default_rng(0)
            states = _states(rng, 3)
            result = get_strategy("first_wins").aggregate(states, [1.0, 1.0, 1.0])
            assert result["w0"] is states[0]["w0"]
        finally:
            # Keep the global registry clean for other tests.
            import repro.federated.strategies as mod

            del mod._REGISTRY["first_wins"]

    def test_strategy_from_config_default_is_none(self):
        assert strategy_from_config(RunConfig()) is None

    def test_strategy_from_config_threads_parameters(self):
        trimmed = strategy_from_config(RunConfig(aggregation="trimmed_mean",
                                                 trim_ratio=0.25))
        assert isinstance(trimmed, TrimmedMeanStrategy)
        assert trimmed.trim_ratio == 0.25
        stale = strategy_from_config(RunConfig(aggregation="staleness_fedavg",
                                               staleness_exponent=1.5))
        assert isinstance(stale, StalenessFedAvgStrategy)
        assert stale.exponent == 1.5

    def test_run_config_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown aggregation strategy"):
            RunConfig(aggregation="krum")

    def test_async_rejects_double_staleness_discount(self):
        # The async scheduler already discounts weights by the FedBuff factor.
        with pytest.raises(ValueError, match="twice"):
            RunConfig(scheduler="async", aggregation="staleness_fedavg")
        # Round-based schedulers may use the strategy directly.
        RunConfig(scheduler="sync", aggregation="staleness_fedavg")

    def test_run_config_validates_topology_knobs(self):
        with pytest.raises(ValueError):
            RunConfig(trim_ratio=0.5)
        with pytest.raises(ValueError):
            RunConfig(num_shards=0)
        with pytest.raises(ValueError):
            RunConfig(num_edge_aggregators=-1)
        with pytest.raises(ValueError):
            RunConfig(edge_latency_s=-1.0)
        with pytest.raises(ValueError, match="requires checkpoint_dir"):
            RunConfig(checkpoint_every=2)


# ---------------------------------------------------------------- strategies
class TestStrategyMath:
    def test_fedavg_strategy_bit_identical_to_fedavg_states(self):
        rng = np.random.default_rng(1)
        states = _states(rng, 5)
        weights = [1.0, 2.5, 0.5, 4.0, 1.25]
        via_strategy = FedAvgStrategy().aggregate(states, weights)
        via_legacy = fedavg_states(states, weights)
        for name in via_legacy:
            assert np.array_equal(via_strategy[name], via_legacy[name])

    def test_streaming_aggregator_explicit_fedavg_matches_default(self):
        rng = np.random.default_rng(2)
        states = _states(rng, 4)
        default, explicit = StreamingAggregator(), StreamingAggregator("fedavg")
        for i, state in enumerate(states):
            default.add_state((0, 0), state, float(i + 1))
            explicit.add_state((0, 0), state, float(i + 1))
        a, b = default.finalize()[(0, 0)], explicit.finalize()[(0, 0)]
        for name in a:
            assert np.array_equal(a[name], b[name])
        assert default.total_weight((0, 0)) == explicit.total_weight((0, 0))

    def test_trimmed_mean_discards_outlier(self):
        rng = np.random.default_rng(3)
        honest = _states(rng, 4)
        poisoned = {name: np.full_like(value, 1e9)
                    for name, value in honest[0].items()}
        result = TrimmedMeanStrategy(trim_ratio=0.25).aggregate(
            honest + [poisoned], [1.0] * 5)
        for name, value in result.items():
            # The surviving coordinates are a mean over 3 of the 4 honest
            # contributions — far from the 1e9 outlier.
            assert np.all(np.abs(value) < 1e3), name

    def test_trimmed_mean_zero_trim_is_unweighted_mean(self):
        rng = np.random.default_rng(4)
        states = _states(rng, 3)
        result = TrimmedMeanStrategy(trim_ratio=0.0).aggregate(states, [1.0] * 3)
        for name in states[0]:
            expected = np.mean([s[name] for s in states], axis=0)
            assert np.allclose(result[name], expected)

    def test_trimmed_mean_never_trims_everything(self):
        rng = np.random.default_rng(5)
        states = _states(rng, 2)
        # ratio 0.49 with n=2 would trim 0 each side: k = min(0, 0) = 0.
        result = TrimmedMeanStrategy(trim_ratio=0.49).aggregate(states, [1.0, 1.0])
        for name in states[0]:
            assert np.allclose(result[name],
                               np.mean([s[name] for s in states], axis=0))

    def test_trim_ratio_validation(self):
        with pytest.raises(ValueError):
            TrimmedMeanStrategy(trim_ratio=0.5)
        with pytest.raises(ValueError):
            TrimmedMeanStrategy(trim_ratio=-0.1)

    def test_median_is_coordinatewise(self):
        states = [{"w": np.array([0.0, 10.0])},
                  {"w": np.array([1.0, -10.0])},
                  {"w": np.array([100.0, 0.0])}]
        result = MedianStrategy().aggregate(states, [1.0] * 3)
        assert np.array_equal(result["w"], np.array([1.0, 0.0]))

    def test_staleness_fedavg_matches_manual_discounting(self):
        rng = np.random.default_rng(6)
        states = _states(rng, 3)
        weights = [2.0, 1.0, 3.0]
        stalenesses = [0, 2, 5]
        result = StalenessFedAvgStrategy(exponent=0.5).aggregate(
            states, weights, stalenesses=stalenesses)
        discounted = [w * staleness_discount(s, 0.5)
                      for w, s in zip(weights, stalenesses)]
        expected = fedavg_states(states, discounted)
        for name in expected:
            assert np.array_equal(result[name], expected[name])

    def test_async_scheduler_delegates_to_shared_discount(self):
        scheduler = AsyncScheduler(staleness_exponent=0.7)
        for staleness in (0, 1, 3, 10):
            assert scheduler.staleness_discount(staleness) == \
                staleness_discount(staleness, 0.7)

    def test_staleness_travels_on_expert_updates(self):
        update = ExpertUpdate(0, 0, 0, {"w": np.zeros(2)}, weight=1.0, staleness=3)
        agg = StreamingAggregator("staleness_fedavg")
        agg.add(update)
        assert agg.total_weight((0, 0)) == staleness_discount(3, 0.5)

    def test_buffering_rejects_mismatched_tensor_names(self):
        acc = MedianStrategy().make_accumulator()
        acc.add({"a": np.zeros(2)}, 1.0)
        with pytest.raises(ValueError, match="mismatched tensor names"):
            acc.add({"b": np.zeros(2)}, 1.0)


# ------------------------------------------------------------ sharded server
class TestShardedParameterServer:
    def _updates(self, model, num_participants=3, jitter=0.01):
        rng = np.random.default_rng(7)
        updates = []
        for pid in range(num_participants):
            for layer, expert in model.iter_expert_ids():
                state = {name: value + jitter * rng.normal(size=value.shape)
                         for name, value in model.expert_state(layer, expert).items()}
                updates.append(ExpertUpdate(pid, layer, expert, state,
                                            weight=float(pid + 1)))
        return updates

    def test_shard_partition_is_total_and_balanced(self, tiny_config):
        server = ShardedParameterServer(MoETransformer(tiny_config), num_shards=3)
        keys = list(server.global_model.iter_expert_ids())
        owners = [server.shard_of(key) for key in keys]
        assert set(owners) <= set(range(3))
        counts = [owners.count(shard) for shard in range(3)]
        assert max(counts) - min(counts) <= 1
        collected = [key for shard in range(3) for key in server.shard_keys(shard)]
        assert sorted(collected) == sorted(keys)

    def test_unknown_key_and_bad_shard_raise(self, tiny_config):
        server = ShardedParameterServer(MoETransformer(tiny_config), num_shards=2)
        with pytest.raises(KeyError):
            server.shard_of((99, 99))
        with pytest.raises(ValueError):
            server.shard_keys(5)

    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_sharded_fedavg_bit_identical_to_flat(self, tiny_config, num_shards):
        flat_model = MoETransformer(tiny_config)
        sharded_model = MoETransformer(tiny_config)
        sharded_model.load_state_dict(flat_model.state_dict())

        flat = ParameterServer(flat_model)
        sharded = ShardedParameterServer(sharded_model, num_shards=num_shards)
        updates = self._updates(flat_model)

        flat_contrib = flat.aggregate(list(updates))
        sharded_contrib = sharded.aggregate(list(updates))
        assert flat_contrib == sharded_contrib
        flat_state, sharded_state = flat_model.state_dict(), sharded_model.state_dict()
        for name in flat_state:
            assert np.array_equal(flat_state[name], sharded_state[name]), name
        assert sum(sharded.last_shard_contributions) == sum(flat_contrib.values())

    def test_sharded_buffered_keeps_zero_weight_fallback(self, tiny_config):
        """All-zero weights degrade to an unweighted mean on any shard count."""
        flat_model = MoETransformer(tiny_config)
        sharded_model = MoETransformer(tiny_config)
        sharded_model.load_state_dict(flat_model.state_dict())
        rng = np.random.default_rng(9)

        def zero_weight_updates(model):
            return [ExpertUpdate(pid, 0, 0,
                                 {name: value + rng.normal(size=value.shape)
                                  for name, value in model.expert_state(0, 0).items()},
                                 weight=0.0)
                    for pid in range(3)]

        rng = np.random.default_rng(9)
        ParameterServer(flat_model).aggregate(zero_weight_updates(flat_model))
        rng = np.random.default_rng(9)
        ShardedParameterServer(sharded_model, num_shards=2).aggregate(
            zero_weight_updates(sharded_model))
        for name, value in flat_model.expert_state(0, 0).items():
            assert np.array_equal(value, sharded_model.expert_state(0, 0)[name])

    def test_sharded_streaming_consumes_generator(self, tiny_config):
        model = MoETransformer(tiny_config)
        server = ShardedParameterServer(model, num_shards=2)
        contributions = server.aggregate(iter(self._updates(model)), streaming=True)
        assert sum(contributions.values()) > 0

    def test_strategy_override_applies_per_shard(self, tiny_config):
        model = MoETransformer(tiny_config)
        baseline = model.expert_state(0, 0)
        server = ShardedParameterServer(model, num_shards=2,
                                        strategy=TrimmedMeanStrategy(0.25))
        honest = [ExpertUpdate(pid, 0, 0, dict(baseline), weight=1.0)
                  for pid in range(4)]
        poisoned = ExpertUpdate(9, 0, 0,
                                {name: np.full_like(value, 1e9)
                                 for name, value in baseline.items()}, weight=1.0)
        server.aggregate(honest + [poisoned])
        for name, value in model.expert_state(0, 0).items():
            assert np.allclose(value, baseline[name]), name

    def test_from_server_preserves_bookkeeping(self, tiny_config):
        flat = ParameterServer(MoETransformer(tiny_config))
        flat.round_index = 3
        flat.contribution_counts = {(0, 0): 5}
        sharded = ShardedParameterServer.from_server(flat, num_shards=2)
        assert sharded.global_model is flat.global_model
        assert sharded.round_index == 3
        assert sharded.contribution_counts == {(0, 0): 5}

    def test_state_export_import_guards_shard_count(self, tiny_config):
        sharded = ShardedParameterServer(MoETransformer(tiny_config), num_shards=2)
        flat = ParameterServer(MoETransformer(tiny_config))
        with pytest.raises(ValueError, match="shard"):
            flat.import_state(sharded.export_state())

    def test_make_server_selects_flavour(self, tiny_config):
        model = MoETransformer(tiny_config)
        assert isinstance(make_server(model), ParameterServer)
        sharded = make_server(model, RunConfig(num_shards=3))
        assert isinstance(sharded, ShardedParameterServer)
        assert sharded.num_shards == 3

    def test_tuner_auto_shards_plain_server(self, vocab, tiny_config):
        server, participants, test, config = build_federation(
            vocab, tiny_config, num_shards=2)
        tuner = ConstantMethod(server, participants, test, config=config)
        assert isinstance(tuner.server, ShardedParameterServer)
        assert tuner.server.num_shards == 2
        assert tuner.server.global_model is server.global_model


# ------------------------------------------------------------------ topology
class TestHierarchicalTopology:
    def _partial_updates(self, model, num_participants=6):
        rng = np.random.default_rng(8)
        updates = []
        for pid in range(num_participants):
            for layer, expert in list(model.iter_expert_ids())[:4]:
                state = {name: value + 0.01 * rng.normal(size=value.shape)
                         for name, value in model.expert_state(layer, expert).items()}
                updates.append(ExpertUpdate(pid, layer, expert, state,
                                            weight=float(pid % 3 + 1)))
        return updates

    def test_edge_assignment_round_robin_and_custom(self):
        topo = HierarchicalTopology(num_edges=3)
        assert [topo.edge_of(pid) for pid in range(6)] == [0, 1, 2, 0, 1, 2]
        custom = HierarchicalTopology(num_edges=2, group_fn=lambda pid: pid // 10)
        assert custom.edge_of(5) == 0 and custom.edge_of(15) == 1
        with pytest.raises(ValueError, match="outside"):
            HierarchicalTopology(num_edges=2, group_fn=lambda pid: 7).edge_of(0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            HierarchicalTopology(num_edges=0)
        with pytest.raises(ValueError, match="one edge"):
            HierarchicalTopology(num_edges=2, channels=[Channel()])

    def test_hierarchical_fedavg_matches_flat_numerically(self, tiny_config):
        flat_model = MoETransformer(tiny_config)
        hier_model = MoETransformer(tiny_config)
        hier_model.load_state_dict(flat_model.state_dict())
        updates = self._partial_updates(flat_model)

        ParameterServer(flat_model).aggregate(list(updates))
        topo = HierarchicalTopology(num_edges=3)
        contributions, stats = topo.aggregate(ParameterServer(hier_model),
                                              iter(updates))

        flat_state, hier_state = flat_model.state_dict(), hier_model.state_dict()
        for name in flat_state:
            assert np.allclose(flat_state[name], hier_state[name],
                               rtol=1e-12, atol=1e-12), name
        # The root received one partial per (edge, key): 3 edges x 4 keys.
        assert sum(contributions.values()) == 12
        assert stats.payloads == 12
        assert stats.total_bytes > 0
        assert sum(topo.last_edge_counts) == len(updates)

    def test_corrupted_edge_frames_are_dropped(self, tiny_config):
        from repro.runtime.faults import ChannelFaultInjector

        model = MoETransformer(tiny_config)
        before = model.state_dict()
        updates = self._partial_updates(model)
        faults = ChannelFaultInjector(corrupt_prob=1.0, seed=0)
        channels = [Channel(participant_id=edge, faults=faults)
                    for edge in range(2)]
        topo = HierarchicalTopology(num_edges=2, channels=channels)
        contributions, stats = topo.aggregate(ParameterServer(model), iter(updates))
        # Every partial was corrupted in flight: nothing may reach the root.
        assert contributions == {}
        assert stats.corrupted == stats.payloads > 0
        assert stats.decode_failures == stats.payloads
        after = model.state_dict()
        for name in before:
            assert np.array_equal(before[name], after[name]), name

    def test_lost_edge_frames_never_fold(self, tiny_config):
        from repro.runtime.faults import ChannelFaultInjector

        model = MoETransformer(tiny_config)
        updates = self._partial_updates(model)
        faults = ChannelFaultInjector(loss_prob=1.0, seed=0)
        channels = [Channel(participant_id=edge, faults=faults)
                    for edge in range(2)]
        topo = HierarchicalTopology(num_edges=2, channels=channels)
        contributions, stats = topo.aggregate(ParameterServer(model), iter(updates))
        assert contributions == {}
        assert stats.lost == stats.payloads > 0

    def test_edge_latency_meters_seconds(self, tiny_config):
        model = MoETransformer(tiny_config)
        updates = self._partial_updates(model)
        topo = HierarchicalTopology(num_edges=2, latency_s=0.25)
        _, stats = topo.aggregate(ParameterServer(model), iter(updates))
        assert stats.seconds == pytest.approx(0.25 * stats.payloads)

    def test_topology_composes_with_sharding_and_trimming(self, tiny_config):
        model = MoETransformer(tiny_config)
        baseline = {key: model.expert_state(*key)
                    for key in list(model.iter_expert_ids())[:2]}
        server = ShardedParameterServer(model, num_shards=2)
        updates = []
        for pid in range(6):
            for key, state in baseline.items():
                updates.append(ExpertUpdate(pid, key[0], key[1], dict(state),
                                            weight=1.0))
        topo = HierarchicalTopology(num_edges=2)
        contributions, _ = topo.aggregate(server, iter(updates),
                                          strategy=TrimmedMeanStrategy(0.25))
        assert set(contributions) == set(baseline)
        for key, state in baseline.items():
            for name, value in server.expert_state(*key).items():
                assert np.allclose(value, state[name])

    def test_zero_weight_groups_contribute_nothing(self, tiny_config):
        """FedAvg edges drop all-zero-weight keys instead of crashing."""
        model = MoETransformer(tiny_config)
        untouched = {name: value.copy()
                     for name, value in model.expert_state(0, 0).items()}
        zero = [ExpertUpdate(pid, 0, 0,
                             {name: value + 99.0 for name, value in untouched.items()},
                             weight=0.0)
                for pid in range(4)]
        real = [ExpertUpdate(pid, 1, 0,
                             {name: value + 1.0
                              for name, value in model.expert_state(1, 0).items()},
                             weight=1.0)
                for pid in range(4)]
        topo = HierarchicalTopology(num_edges=2)
        contributions, _ = topo.aggregate(ParameterServer(model), iter(zero + real))
        assert (0, 0) not in contributions  # zero-weight group dropped
        assert (1, 0) in contributions      # weighted group aggregated
        for name, value in model.expert_state(0, 0).items():
            assert np.array_equal(value, untouched[name]), name

    def test_zero_weight_groups_still_fold_under_median(self, tiny_config):
        """Weight-agnostic strategies are unaffected by zero weights."""
        model = MoETransformer(tiny_config)
        target = {name: np.full_like(value, 2.0)
                  for name, value in model.expert_state(0, 0).items()}
        updates = [ExpertUpdate(pid, 0, 0, dict(target), weight=0.0)
                   for pid in range(3)]
        topo = HierarchicalTopology(num_edges=1)
        contributions, _ = topo.aggregate(ParameterServer(model), iter(updates),
                                          strategy=MedianStrategy())
        assert (0, 0) in contributions
        for name, value in model.expert_state(0, 0).items():
            assert np.array_equal(value, target[name])

    def test_make_topology_from_config(self):
        assert make_topology(RunConfig()) is None
        topo = make_topology(RunConfig(num_edge_aggregators=4, edge_latency_s=0.5))
        assert topo.num_edges == 4
        assert topo.channels[0].latency_s == 0.5

    def test_describe_reports_shape(self):
        topo = HierarchicalTopology(num_edges=2)
        shape = topo.describe()
        assert shape["tiers"] == 2 and shape["num_edges"] == 2

    def test_empty_round_resets_edge_counts_and_metering(self, tiny_config):
        """Stale per-round counts/stats must not survive a zero-update round."""
        model = MoETransformer(tiny_config)
        topo = HierarchicalTopology(num_edges=2, latency_s=0.1)
        contributions, stats = topo.aggregate(ParameterServer(model),
                                              iter(self._partial_updates(model)))
        assert sum(topo.last_edge_counts) > 0
        assert stats.payloads > 0
        contributions, stats = topo.aggregate(ParameterServer(model), iter([]))
        assert contributions == {}
        assert topo.last_edge_counts == [0, 0]
        assert all(s.payloads == 0 and s.seconds == 0.0 and s.total_bytes == 0
                   for s in topo.last_tier_stats)

    def test_mid_stream_failure_does_not_leave_stale_counts(self, tiny_config):
        """A fold that dies mid-round leaves zeroed, not stale, counts."""
        model = MoETransformer(tiny_config)
        topo = HierarchicalTopology(num_edges=2)
        topo.aggregate(ParameterServer(model), iter(self._partial_updates(model)))

        def poisoned():
            # Both land on edge 0, so the second add dies inside the tier-0
            # fold — before the per-edge counts were ever filled in.
            yield ExpertUpdate(0, 0, 0, {"w": np.zeros(2)}, weight=1.0)
            yield ExpertUpdate(2, 0, 0, {"mismatched": np.zeros(2)}, weight=1.0)

        with pytest.raises(ValueError, match="mismatched tensor names"):
            topo.aggregate(ParameterServer(model), poisoned())
        assert sum(topo.last_edge_counts) == 0


# ----------------------------------------------------------- aggregation tree
class TestAggregationTree:
    def _updates(self, model, num_participants=8, keys=4, seed=8):
        rng = np.random.default_rng(seed)
        updates = []
        for pid in range(num_participants):
            for layer, expert in list(model.iter_expert_ids())[:keys]:
                state = {name: value + 0.01 * rng.normal(size=value.shape)
                         for name, value in model.expert_state(layer, expert).items()}
                updates.append(ExpertUpdate(pid, layer, expert, state,
                                            weight=float(pid % 3 + 1)))
        return updates

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="at least one tier"):
            AggregationTree(())
        with pytest.raises(ValueError, match="at least one tier"):
            AggregationTree((3, 0))
        with pytest.raises(ValueError, match="one upward channel"):
            AggregationTree((2, 2), channels=[[Channel(), Channel()], [Channel()]])
        with pytest.raises(TypeError, match="GroupingPolicy or callable"):
            AggregationTree((2,), grouping=42)

    def test_shape_accessors(self):
        tree = AggregationTree((6, 2))
        assert tree.depth == 2 and tree.num_edges == 6
        assert [len(tier) for tier in tree.tier_channels] == [6, 2]
        assert tree.channels is tree.tier_channels[0]
        assert tree.parent_of(0, 5) == 1
        with pytest.raises(ValueError, match="feeds the root"):
            tree.parent_of(1, 0)
        assert tree.pseudo_id(0, 3) == -4       # the historical -(edge + 1)
        assert tree.pseudo_id(1, 0) == -1001    # deeper tiers keep ids distinct
        assert tree.describe()["tiers"] == 3

    @pytest.mark.parametrize("tiers", [(3,), (3, 2), (2, 2, 2)])
    def test_tree_fedavg_matches_flat_numerically(self, tiny_config, tiers):
        flat_model = MoETransformer(tiny_config)
        tree_model = MoETransformer(tiny_config)
        tree_model.load_state_dict(flat_model.state_dict())
        updates = self._updates(flat_model)

        ParameterServer(flat_model).aggregate(list(updates))
        tree = AggregationTree(tiers)
        contributions, stats = tree.aggregate(ParameterServer(tree_model),
                                              iter(updates))
        flat_state, tree_state = flat_model.state_dict(), tree_model.state_dict()
        for name in flat_state:
            assert np.allclose(flat_state[name], tree_state[name],
                               rtol=1e-12, atol=1e-12), name
        # The root receives one partial per (last-tier node, key).
        assert sum(contributions.values()) == tiers[-1] * 4
        assert stats.payloads == sum(tree.last_tier_stats[k].payloads
                                     for k in range(tree.depth))

    def test_per_tier_metering_and_counts(self, tiny_config):
        model = MoETransformer(tiny_config)
        tree = AggregationTree((4, 2), latency_s=0.5)
        updates = self._updates(model)
        _, stats = tree.aggregate(ParameterServer(model), iter(updates))
        # Tier 0 folded every participant update; tier 1 folded tier-0 partials.
        assert sum(tree.last_tier_counts[0]) == len(updates)
        assert sum(tree.last_tier_counts[1]) == tree.last_tier_stats[0].payloads
        assert tree.last_tier_stats[0].payloads == 4 * 4   # 4 nodes x 4 keys
        assert tree.last_tier_stats[1].payloads == 2 * 4   # 2 nodes x 4 keys
        for tier_stats in tree.last_tier_stats:
            assert tier_stats.seconds == pytest.approx(0.5 * tier_stats.payloads)
        assert stats.total_bytes == sum(s.total_bytes for s in tree.last_tier_stats)

    def test_depth_two_composes_with_sharding_and_strategy(self, tiny_config):
        model = MoETransformer(tiny_config)
        server = ShardedParameterServer(model, num_shards=2)
        baseline = {key: model.expert_state(*key)
                    for key in list(model.iter_expert_ids())[:2]}
        updates = [ExpertUpdate(pid, key[0], key[1], dict(state), weight=1.0)
                   for pid in range(8) for key, state in baseline.items()]
        tree = AggregationTree((4, 2))
        contributions, _ = tree.aggregate(server, iter(updates),
                                          strategy=TrimmedMeanStrategy(0.25))
        assert set(contributions) == set(baseline)
        for key, state in baseline.items():
            for name, value in server.expert_state(*key).items():
                assert np.allclose(value, state[name])

    def test_export_import_state_roundtrip_and_shape_guard(self):
        tree = AggregationTree((3, 2), latency_s=0.1)
        tree.channels[1].send(b"payload", direction="up")
        state = tree.export_state()
        assert state["tiers"] == [3, 2]
        clone = AggregationTree((3, 2), latency_s=0.1)
        clone.import_state(state)
        assert clone.channels[1]._sequence == 1
        with pytest.raises(ValueError, match="tiers"):
            AggregationTree((2, 2)).import_state(state)

    def test_import_state_rejects_drifted_grouping(self):
        """Same config can resolve to different effective groupings (cost
        models appearing/disappearing) — the snapshot must catch that."""
        costs = {0: 2.0, 1: 1.0}
        snapshot = AggregationTree((2,), grouping=CostAwareGrouping(costs)).export_state()
        assert snapshot["grouping"] == "cost_aware"
        assert snapshot["grouping_costs"] == costs
        with pytest.raises(ValueError, match="edge grouping"):
            AggregationTree((2,)).import_state(snapshot)  # now round-robin
        with pytest.raises(ValueError, match="upload costs"):
            AggregationTree((2,), grouping=CostAwareGrouping({0: 9.0, 1: 1.0})
                            ).import_state(snapshot)
        same = AggregationTree((2,), grouping=CostAwareGrouping(dict(costs)))
        same.import_state(snapshot)  # identical costs resume cleanly


# ------------------------------------------------------------------- grouping
class TestGrouping:
    def test_round_robin_is_the_legacy_assignment(self):
        policy = RoundRobinGrouping()
        assert [policy.group_of(pid, 3) for pid in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_cost_aware_balances_makespan_not_count(self):
        # pid % 2 would put both heavy uploaders (0, 2) on distinct edges only
        # by luck; LPT guarantees the heaviest two land apart.
        costs = {0: 10.0, 1: 1.0, 2: 9.0, 3: 2.0, 4: 8.0, 5: 3.0}
        policy = CostAwareGrouping(costs)
        assignment = {pid: policy.group_of(pid, 2) for pid in costs}
        assert assignment[0] != assignment[2]
        loads = policy.group_loads(2)
        assert max(loads) - min(loads) <= min(costs.values())

    def test_cost_aware_is_deterministic_and_tie_stable(self):
        costs = {pid: 1.0 for pid in range(8)}
        a = CostAwareGrouping(costs)
        b = CostAwareGrouping(dict(reversed(list(costs.items()))))
        for pid in costs:
            assert a.group_of(pid, 3) == b.group_of(pid, 3)

    def test_cost_aware_falls_back_to_round_robin(self):
        empty = CostAwareGrouping({})
        assert [empty.group_of(pid, 2) for pid in range(4)] == [0, 1, 0, 1]
        partial = CostAwareGrouping({0: 5.0})
        assert partial.group_of(99, 2) == 99 % 2   # unknown pid: stable fallback

    def test_make_topology_uses_costs_by_default(self):
        costs = {0: 10.0, 1: 1.0, 2: 9.0, 3: 2.0}
        topo = make_topology(RunConfig(num_edge_aggregators=2),
                             participant_costs=costs)
        assert isinstance(topo.grouping, CostAwareGrouping)
        assert topo.edge_of(0) != topo.edge_of(2)
        plain = make_topology(RunConfig(num_edge_aggregators=2))
        assert isinstance(plain.grouping, RoundRobinGrouping)
        forced = make_topology(
            RunConfig(num_edge_aggregators=2, edge_grouping="round_robin"),
            participant_costs=costs)
        assert isinstance(forced.grouping, RoundRobinGrouping)

    def test_run_config_edge_tier_validation(self):
        assert RunConfig().resolved_edge_tiers == ()
        assert RunConfig(num_edge_aggregators=3).resolved_edge_tiers == (3,)
        assert RunConfig(edge_tiers=[4, 2]).resolved_edge_tiers == (4, 2)
        assert RunConfig(edge_tiers=(4, 2), num_edge_aggregators=4).edge_tiers == (4, 2)
        with pytest.raises(ValueError, match="disagrees"):
            RunConfig(edge_tiers=(4, 2), num_edge_aggregators=3)
        with pytest.raises(ValueError, match="positive widths"):
            RunConfig(edge_tiers=())
        with pytest.raises(ValueError, match="positive widths"):
            RunConfig(edge_tiers=(3, 0))
        with pytest.raises(ValueError, match="edge grouping"):
            RunConfig(edge_grouping="random")
        with pytest.raises(ValueError, match="aggregation executor"):
            RunConfig(aggregation_executor="threads")
        with pytest.raises(ValueError, match="aggregation_workers"):
            RunConfig(aggregation_workers=0)
        with pytest.raises(ValueError, match="checkpoint_keep_last"):
            RunConfig(checkpoint_keep_last=-1)


# ------------------------------------------------------------- run-level wiring
class TestRunLevelTopology:
    def test_edge_metrics_surface_in_round_results(self, vocab, tiny_config):
        server, participants, test, config = build_federation(
            vocab, tiny_config, num_edge_aggregators=2, edge_latency_s=0.1)
        result = ConstantMethod(server, participants, test, config=config).run(2)
        for round_result in result.rounds:
            assert round_result.edge_payloads > 0
            assert round_result.edge_bytes > 0
            assert round_result.edge_seconds > 0

    def test_flat_run_reports_zero_edge_traffic(self, vocab, tiny_config):
        server, participants, test, config = build_federation(vocab, tiny_config)
        result = ConstantMethod(server, participants, test, config=config).run(2)
        assert all(r.edge_bytes == 0 and r.edge_payloads == 0 for r in result.rounds)
        assert all(r.tier_bytes == [] and r.tier_payloads == [] for r in result.rounds)

    def test_three_tier_run_reports_per_tier_metrics(self, vocab, tiny_config):
        server, participants, test, config = build_federation(
            vocab, tiny_config, edge_tiers=(3, 2), edge_latency_s=0.1)
        tuner = ConstantMethod(server, participants, test, config=config)
        result = tuner.run(2)
        assert tuner.topology.depth == 2
        for round_result in result.rounds:
            assert len(round_result.tier_bytes) == 2
            assert sum(round_result.tier_bytes) == round_result.edge_bytes
            assert sum(round_result.tier_seconds) == pytest.approx(
                round_result.edge_seconds)
            assert sum(round_result.tier_payloads) == round_result.edge_payloads
            assert all(b > 0 for b in round_result.tier_bytes)

    def _run_states(self, vocab, tiny_config, **config_kwargs):
        server, participants, test, config = build_federation(
            vocab, tiny_config, **config_kwargs)
        tuner = ConstantMethod(server, participants, test, config=config)
        result = tuner.run(2)
        return result, tuner.server.global_model.state_dict()

    def test_flat_explicit_fedavg_bit_identical_to_default(self, vocab, tiny_config):
        """aggregation='fedavg', 1 shard, 0 edges == the pre-refactor default."""
        base_result, base_state = self._run_states(vocab, tiny_config)
        expl_result, expl_state = self._run_states(
            vocab, tiny_config, aggregation="fedavg", num_shards=1,
            num_edge_aggregators=0)
        for a, b in zip(base_result.rounds, expl_result.rounds):
            assert a.train_loss == b.train_loss
            assert a.metric_value == b.metric_value
            assert a.simulated_time == b.simulated_time
        for name in base_state:
            assert np.array_equal(base_state[name], expl_state[name]), name

    def test_sharded_run_bit_identical_to_flat(self, vocab, tiny_config):
        base_result, base_state = self._run_states(vocab, tiny_config)
        shard_result, shard_state = self._run_states(vocab, tiny_config, num_shards=4)
        for a, b in zip(base_result.rounds, shard_result.rounds):
            assert a.train_loss == b.train_loss
            assert a.metric_value == b.metric_value
        for name in base_state:
            assert np.array_equal(base_state[name], shard_state[name]), name

    def test_trimmed_mean_run_under_each_scheduler(self, vocab, tiny_config):
        for scheduler in ("sync", "semisync", "async"):
            server, participants, test, config = build_federation(
                vocab, tiny_config, aggregation="trimmed_mean", trim_ratio=0.2,
                scheduler=scheduler, participants_per_round=3)
            result = ConstantMethod(server, participants, test, config=config).run(2)
            assert len(result.rounds) == 2
