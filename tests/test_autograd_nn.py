"""Unit tests for the nn module system and layers."""

import numpy as np
import pytest

from repro.autograd import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleList,
    RMSNorm,
    Sequential,
    Tensor,
    functional as F,
)


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8)
        self.fc2 = Linear(8, 2)

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


class TestModule:
    def test_parameter_registration(self):
        model = TwoLayer()
        names = [name for name, _ in model.named_parameters()]
        assert "fc1.weight" in names and "fc2.bias" in names
        assert len(names) == 4

    def test_num_parameters(self):
        model = TwoLayer()
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_state_dict_roundtrip(self):
        model = TwoLayer()
        state = model.state_dict()
        other = TwoLayer()
        other.load_state_dict(state)
        for (_, a), (_, b) in zip(model.named_parameters(), other.named_parameters()):
            assert np.allclose(a.data, b.data)

    def test_load_state_dict_missing_key_strict(self):
        model = TwoLayer()
        state = model.state_dict()
        state.pop("fc1.weight")
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_shape_mismatch(self):
        model = TwoLayer()
        state = model.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_load_state_dict_non_strict(self):
        model = TwoLayer()
        missing = model.load_state_dict({}, strict=False)
        assert set(missing) == {name for name, _ in model.named_parameters()}

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2), Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_freeze_unfreeze(self):
        model = TwoLayer()
        model.freeze()
        assert all(not p.requires_grad for p in model.parameters())
        model.unfreeze()
        assert all(p.requires_grad for p in model.parameters())

    def test_zero_grad(self):
        model = TwoLayer()
        x = Tensor(np.ones((3, 4)))
        model(x).sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_named_modules(self):
        model = TwoLayer()
        names = dict(model.named_modules())
        assert "fc1" in names and "fc2" in names


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(5, 3)
        out = layer(Tensor(np.zeros((7, 5))))
        assert out.shape == (7, 3)

    def test_no_bias(self):
        layer = Linear(5, 3, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_matches_manual_affine(self):
        layer = Linear(4, 2)
        x = np.random.default_rng(0).standard_normal((3, 4))
        out = layer(Tensor(x)).data
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(out, expected)

    def test_gradients_flow_to_weight(self):
        layer = Linear(4, 2)
        layer(Tensor(np.ones((3, 4)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 6)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 6)

    def test_gradient_accumulates_on_repeated_index(self):
        emb = Embedding(5, 3)
        out = emb(np.array([1, 1, 2]))
        out.sum().backward()
        assert np.allclose(emb.weight.grad[1], 2.0)
        assert np.allclose(emb.weight.grad[2], 1.0)
        assert np.allclose(emb.weight.grad[0], 0.0)


class TestNorms:
    def test_layer_norm_zero_mean_unit_var(self):
        ln = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).standard_normal((4, 8)) * 5 + 3)
        out = ln(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.var(axis=-1), 1.0, atol=1e-3)

    def test_rms_norm_scale(self):
        rn = RMSNorm(8)
        x = Tensor(np.random.default_rng(0).standard_normal((4, 8)))
        out = rn(x).data
        rms = np.sqrt((out ** 2).mean(axis=-1))
        assert np.allclose(rms, 1.0, atol=1e-3)

    def test_norm_gradients(self):
        ln = LayerNorm(6)
        x = Tensor(np.random.default_rng(1).standard_normal((2, 6)), requires_grad=True)
        ln(x).sum().backward()
        assert x.grad is not None and ln.weight.grad is not None


class TestDropout:
    def test_eval_mode_is_identity(self):
        drop = Dropout(0.9)
        drop.eval()
        x = Tensor(np.ones((10, 10)))
        assert np.allclose(drop(x).data, 1.0)

    def test_train_mode_zeroes_and_scales(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        out = drop(x).data
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        nonzero = out[out != 0]
        assert np.allclose(nonzero, 2.0)

    def test_zero_probability_identity(self):
        drop = Dropout(0.0)
        x = Tensor(np.random.default_rng(0).standard_normal((5, 5)))
        assert np.allclose(drop(x).data, x.data)


class TestContainers:
    def test_module_list_registration_and_iteration(self):
        layers = ModuleList([Linear(2, 2) for _ in range(3)])
        assert len(layers) == 3
        assert len(list(layers.parameters())) == 6
        layers.append(Linear(2, 2))
        assert len(layers) == 4

    def test_module_list_setitem_replaces(self):
        layers = ModuleList([Linear(2, 2)])
        replacement = Linear(2, 2)
        layers[0] = replacement
        assert layers[0] is replacement
        assert dict(layers.named_parameters())["0.weight"] is replacement.weight

    def test_sequential_forward(self):
        model = Sequential(Linear(3, 4), Linear(4, 2))
        out = model(Tensor(np.zeros((5, 3))))
        assert out.shape == (5, 2)
        assert len(model) == 2


class TestFunctional:
    def test_cross_entropy_matches_manual(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((4, 5))
        targets = np.array([0, 2, 4, 1])
        loss = F.cross_entropy(Tensor(logits, requires_grad=True), targets)
        log_probs = logits - np.log(np.exp(logits).sum(axis=-1, keepdims=True))
        expected = -log_probs[np.arange(4), targets].mean()
        assert loss.item() == pytest.approx(expected, rel=1e-6)

    def test_cross_entropy_ignore_index(self):
        logits = Tensor(np.zeros((3, 4)), requires_grad=True)
        targets = np.array([1, -100, 2])
        loss = F.cross_entropy(logits, targets, ignore_index=-100)
        assert loss.item() == pytest.approx(np.log(4.0), rel=1e-6)

    def test_cross_entropy_reductions(self):
        logits = Tensor(np.zeros((3, 4)), requires_grad=True)
        targets = np.array([0, 1, 2])
        none = F.cross_entropy(logits, targets, reduction="none")
        total = F.cross_entropy(logits, targets, reduction="sum")
        assert none.shape == (3,)
        assert total.item() == pytest.approx(none.data.sum())

    def test_embedding_functional(self):
        weight = Tensor(np.arange(12, dtype=float).reshape(4, 3), requires_grad=True)
        out = F.embedding(weight, np.array([3, 0]))
        assert np.allclose(out.data, [[9, 10, 11], [0, 1, 2]])

    def test_linear_functional_without_bias(self):
        x = Tensor(np.ones((2, 3)))
        w = Tensor(np.ones((4, 3)))
        out = F.linear(x, w)
        assert out.shape == (2, 4)
        assert np.allclose(out.data, 3.0)
