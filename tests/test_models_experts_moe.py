"""Tests for expert FFNs, the MoE layer and expert re-routing."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.models import ExpertFFN, ExpertRemap, MoELayer


def make_expert(seed=0, d_model=8, d_ff=16):
    return ExpertFFN(d_model, d_ff, rng=np.random.default_rng(seed))


class TestExpertFFN:
    def test_forward_shape(self):
        expert = make_expert()
        out = expert(Tensor(np.zeros((5, 8))))
        assert out.shape == (5, 8)

    def test_weight_vector_roundtrip(self):
        expert = make_expert(1)
        vector = expert.weight_vector()
        other = make_expert(2)
        other.load_weight_vector(vector)
        assert np.allclose(other.weight_vector(), vector)

    def test_load_weight_vector_validates_size(self):
        expert = make_expert()
        with pytest.raises(ValueError):
            expert.load_weight_vector(np.zeros(3))

    def test_state_roundtrip(self):
        expert = make_expert(3)
        state = expert.state()
        other = make_expert(4)
        other.load_state(state)
        x = Tensor(np.random.default_rng(0).standard_normal((3, 8)))
        assert np.allclose(expert(x).data, other(x).data)

    def test_activations(self):
        for activation in ("silu", "gelu", "relu"):
            expert = ExpertFFN(4, 8, activation=activation, rng=np.random.default_rng(0))
            assert expert(Tensor(np.ones((2, 4)))).shape == (2, 4)
        with pytest.raises(ValueError):
            ExpertFFN(4, 8, activation="softplus")(Tensor(np.ones((1, 4))))

    def test_merge_weighted_average(self):
        a, b = make_expert(1), make_expert(2)
        merged = ExpertFFN.merge([a, b], [3.0, 1.0], d_model=8, d_ff=16)
        expected = 0.75 * a.w_gate.weight.data + 0.25 * b.w_gate.weight.data
        assert np.allclose(merged.w_gate.weight.data, expected)

    def test_merge_single_expert_is_identity(self):
        a = make_expert(5)
        merged = ExpertFFN.merge([a], [1.0], d_model=8, d_ff=16)
        assert np.allclose(merged.weight_vector(), a.weight_vector())

    def test_merge_zero_weights_falls_back_to_uniform(self):
        a, b = make_expert(1), make_expert(2)
        merged = ExpertFFN.merge([a, b], [0.0, 0.0], d_model=8, d_ff=16)
        expected = 0.5 * (a.w_up.weight.data + b.w_up.weight.data)
        assert np.allclose(merged.w_up.weight.data, expected)

    def test_merge_validations(self):
        a = make_expert(0)
        with pytest.raises(ValueError):
            ExpertFFN.merge([], [], d_model=8, d_ff=16)
        with pytest.raises(ValueError):
            ExpertFFN.merge([a], [1.0, 2.0], d_model=8, d_ff=16)
        with pytest.raises(ValueError):
            ExpertFFN.merge([a], [-1.0], d_model=8, d_ff=16)


class TestExpertRemap:
    def test_identity(self):
        remap = ExpertRemap.identity(4)
        assert remap.is_identity()
        assert remap[3] == 3

    def test_update_and_apply(self):
        remap = ExpertRemap(4, {2: 0, 3: 1})
        assert remap.apply(np.array([0, 2, 3])).tolist() == [0, 0, 1]
        assert remap.num_slots() == 2  # slots 0 and 1 (ids 0,1 map to 0,1 already)

    def test_out_of_range_rejected(self):
        with pytest.raises(KeyError):
            ExpertRemap(2, {5: 0})
        with pytest.raises(ValueError):
            ExpertRemap(2, {0: -1})

    def test_from_clusters(self):
        remap, tuning, clusters = ExpertRemap.from_clusters(
            6, tuning_experts=[0, 3], clusters=[[1, 2], [4, 5]])
        assert tuning == [0, 3]
        assert remap[0] == 0 and remap[3] == 1
        assert remap[1] == remap[2] == 2
        assert remap[4] == remap[5] == 3

    def test_from_clusters_requires_full_coverage(self):
        with pytest.raises(ValueError):
            ExpertRemap.from_clusters(4, tuning_experts=[0], clusters=[[1]])

    def test_from_clusters_rejects_double_assignment(self):
        with pytest.raises(ValueError):
            ExpertRemap.from_clusters(3, tuning_experts=[0, 1], clusters=[[1, 2]])


class TestMoELayer:
    def _layer(self, num_experts=4, top_k=2, shared=0):
        return MoELayer(d_model=8, d_ff=16, num_experts=num_experts, top_k=top_k,
                        num_shared_experts=shared, rng=np.random.default_rng(0))

    def _input(self, batch=2, seq=5, d_model=8, seed=0):
        return Tensor(np.random.default_rng(seed).standard_normal((batch, seq, d_model)))

    def test_forward_shape(self):
        layer = self._layer()
        assert layer(self._input()).shape == (2, 5, 8)

    def test_routing_record_counts(self):
        layer = self._layer()
        layer(self._input())
        record = layer.last_routing
        assert record.total_tokens == 10
        assert record.token_counts.sum() == 10 * layer.top_k

    def test_sample_ids_recorded(self):
        layer = self._layer()
        layer(self._input(), sample_ids=np.array([11, 22]))
        all_samples = set().union(*layer.last_routing.sample_ids)
        assert all_samples <= {11, 22}
        assert all_samples  # at least one expert saw a sample

    def test_token_mask_excludes_padding_from_stats(self):
        layer = self._layer()
        mask = np.ones((2, 5), dtype=bool)
        mask[:, 3:] = False
        layer(self._input(), token_mask=mask)
        assert layer.last_routing.total_tokens == 6

    def test_shared_experts_always_applied(self):
        layer = self._layer(shared=1)
        with_shared = layer(self._input()).data
        layer.shared_experts[0].w_down.weight.data[...] = 0.0
        without_shared = layer(self._input()).data
        assert not np.allclose(with_shared, without_shared)

    def test_accumulation_across_passes(self):
        layer = self._layer()
        layer.accumulate_routing = True
        layer(self._input(seed=1))
        layer(self._input(seed=2))
        accumulated = layer.accumulated_routing()
        assert accumulated.total_tokens == 20
        layer.reset_routing_accumulator()
        assert layer.accumulated_routing() is None

    def test_compact_experts_with_identity_remap_equivalent(self):
        layer = self._layer()
        x = self._input(seed=3)
        baseline = layer(x).data
        clones = []
        for expert in layer.experts:
            clone = ExpertFFN(8, 16)
            clone.load_state(expert.state())
            clones.append(clone)
        layer.set_compact_experts(clones, ExpertRemap.identity(4))
        assert np.allclose(layer(x).data, baseline)

    def test_compact_experts_merged_slots(self):
        layer = self._layer()
        x = self._input(seed=4)
        remap, _, _ = ExpertRemap.from_clusters(4, tuning_experts=[0], clusters=[[1, 2, 3]])
        kept = ExpertFFN(8, 16)
        kept.load_state(layer.experts[0].state())
        merged = ExpertFFN.merge([layer.experts[i] for i in (1, 2, 3)], [1, 1, 1],
                                 d_model=8, d_ff=16)
        layer.set_compact_experts([kept, merged], remap)
        out = layer(x)
        assert out.shape == (2, 5, 8)
        assert layer.num_local_experts == 2
        # routing statistics remain in original coordinates
        assert layer.last_routing.num_experts == 4

    def test_set_compact_experts_validates_slots(self):
        layer = self._layer()
        remap = ExpertRemap(4, {3: 5})
        with pytest.raises(ValueError):
            layer.set_compact_experts([ExpertFFN(8, 16)], remap)

    def test_gradients_reach_selected_experts_only(self):
        layer = self._layer()
        x = self._input(seed=5)
        out = layer(x)
        out.sum().backward()
        touched = [any(p.grad is not None for p in expert.parameters())
                   for expert in layer.experts]
        record = layer.last_routing
        for expert_idx, was_touched in enumerate(touched):
            if record.token_counts[expert_idx] > 0:
                assert was_touched
            else:
                assert not was_touched

    def test_expert_weight_matrix_shape(self):
        layer = self._layer()
        matrix = layer.expert_weight_matrix()
        assert matrix.shape[0] == 4
        assert matrix.shape[1] == layer.experts[0].weight_vector().size
