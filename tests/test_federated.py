"""Tests for the federated substrate: aggregation, clients, server, round loop."""

import numpy as np
import pytest

from repro.data import make_gsm8k_like, partition_dirichlet, partition_iid, partition_statistics
from repro.federated import (
    ExpertUpdate,
    FederatedFineTuner,
    ParameterServer,
    Participant,
    ParticipantResources,
    ParticipantRoundResult,
    RunConfig,
    apply_fedavg,
    fedavg_states,
    group_updates,
)
from repro.federated.communication import ExchangePlan
from repro.models import MoETransformer
from repro.models.presets import ARCHITECTURE_DESCRIPTORS
from repro.systems import CONSUMER_GPU, CostModel, MemoryModel, RoundCostBreakdown


class TestFedAvg:
    def test_weighted_average(self):
        states = [{"w": np.zeros((2, 2))}, {"w": np.ones((2, 2))}]
        averaged = fedavg_states(states, [1.0, 3.0])
        assert np.allclose(averaged["w"], 0.75)

    def test_zero_weights_fall_back_to_uniform(self):
        states = [{"w": np.zeros(2)}, {"w": np.ones(2) * 2}]
        averaged = fedavg_states(states, [0.0, 0.0])
        assert np.allclose(averaged["w"], 1.0)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            fedavg_states([{"w": np.zeros(2)}], [-1.0])

    def test_empty_states_rejected(self):
        with pytest.raises(ValueError):
            fedavg_states([], [])

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            fedavg_states([{"w": np.zeros(2)}], [1.0, 2.0])

    def test_group_updates(self):
        updates = [
            ExpertUpdate(0, 0, 1, {"w": np.zeros(2)}, 1.0),
            ExpertUpdate(1, 0, 1, {"w": np.ones(2)}, 1.0),
            ExpertUpdate(0, 1, 0, {"w": np.ones(2)}, 1.0),
        ]
        grouped = group_updates(updates)
        assert set(grouped) == {(0, 1), (1, 0)}
        assert len(grouped[(0, 1)]) == 2

    def test_apply_fedavg_loads_into_model(self, tiny_model):
        zero_state = {k: np.zeros_like(v) for k, v in tiny_model.expert_state(0, 0).items()}
        updates = [ExpertUpdate(0, 0, 0, zero_state, 2.0)]
        contributions = apply_fedavg(tiny_model, updates)
        assert contributions == {(0, 0): 1}
        assert np.allclose(tiny_model.get_expert(0, 0).w_gate.weight.data, 0.0)


class TestParticipantResources:
    def test_validation(self):
        with pytest.raises(ValueError):
            ParticipantResources(max_experts=0, max_tuning_experts=1)
        with pytest.raises(ValueError):
            ParticipantResources(max_experts=4, max_tuning_experts=5)

    def test_non_tuning_budget(self):
        resources = ParticipantResources(max_experts=10, max_tuning_experts=4)
        assert resources.max_non_tuning_experts == 6

    def test_from_device_produces_positive_budgets(self):
        memory = MemoryModel(ARCHITECTURE_DESCRIPTORS["deepseek-moe"])
        resources = ParticipantResources.from_device(memory, CONSUMER_GPU)
        assert resources.max_experts >= resources.max_tuning_experts >= 1


class TestParticipant:
    @pytest.fixture()
    def dataset(self, vocab):
        return make_gsm8k_like(vocab=vocab, num_samples=40, seed=2)

    @pytest.fixture()
    def participant(self, dataset):
        return Participant(3, dataset, resources=ParticipantResources(8, 4), seed=1)

    def test_empty_dataset_rejected(self, dataset):
        with pytest.raises(ValueError):
            Participant(0, dataset.subset([]))

    def test_local_batches_respects_limits(self, participant, tiny_config):
        batches = participant.local_batches(8, max_batches=2, max_seq_len=tiny_config.max_seq_len)
        assert len(batches) == 2
        assert all(b.batch_size <= 8 for b in batches)

    def test_local_batches_filter_by_sample_ids(self, participant, dataset, tiny_config):
        wanted = [dataset.samples[0].sample_id, dataset.samples[1].sample_id]
        batches = participant.local_batches(8, sample_ids=wanted, max_seq_len=tiny_config.max_seq_len)
        seen = {int(s) for b in batches for s in b.sample_ids}
        assert seen == set(wanted)

    def test_local_batches_reshuffle_between_rounds(self, participant, tiny_config):
        a = participant.local_batches(8, max_seq_len=tiny_config.max_seq_len)
        b = participant.local_batches(8, max_seq_len=tiny_config.max_seq_len)
        assert not np.array_equal(a[0].sample_ids, b[0].sample_ids)

    def test_local_finetune_all_experts(self, participant, tiny_model, tiny_config):
        batches = participant.local_batches(8, max_batches=2, max_seq_len=tiny_config.max_seq_len)
        result = participant.local_finetune(tiny_model, batches, learning_rate=1e-2)
        assert result.mean_loss > 0
        assert result.num_batches == 2
        assert result.expert_grad_norms
        assert result.expert_token_counts

    def test_local_finetune_selected_experts_only(self, participant, tiny_model, tiny_config):
        before = {key: tiny_model.expert_state(*key) for key in tiny_model.iter_expert_ids()}
        batches = participant.local_batches(8, max_batches=2, max_seq_len=tiny_config.max_seq_len)
        selected = {(0, 0), (1, 1)}
        participant.local_finetune(tiny_model, batches, learning_rate=5e-2,
                                   trainable_experts=selected)
        for key in tiny_model.iter_expert_ids():
            after = tiny_model.expert_state(*key)
            changed = any(not np.allclose(before[key][k], after[k]) for k in after)
            if key in selected:
                assert changed, f"selected expert {key} did not move"
            else:
                assert not changed, f"frozen expert {key} moved"

    def test_local_finetune_requires_batches(self, participant, tiny_model):
        with pytest.raises(ValueError):
            participant.local_finetune(tiny_model, [])

    def test_local_finetune_requires_trainable_experts(self, participant, tiny_model, tiny_config):
        batches = participant.local_batches(8, max_batches=1, max_seq_len=tiny_config.max_seq_len)
        with pytest.raises(ValueError):
            participant.local_finetune(tiny_model, batches, trainable_experts=set())


class TestPartitioning:
    @pytest.fixture()
    def dataset(self, vocab):
        return make_gsm8k_like(vocab=vocab, num_samples=100, seed=3)

    def test_dirichlet_partition_covers_everything(self, dataset):
        parts = partition_dirichlet(dataset, 5, alpha=0.5, seed=0)
        all_indices = sorted(i for part in parts for i in part)
        assert all_indices == list(range(len(dataset)))

    def test_dirichlet_partition_disjoint(self, dataset):
        parts = partition_dirichlet(dataset, 5, alpha=0.5, seed=0)
        seen = set()
        for part in parts:
            assert not (seen & set(part))
            seen |= set(part)

    def test_min_samples_guaranteed(self, dataset):
        parts = partition_dirichlet(dataset, 8, alpha=0.1, seed=1, min_samples=3)
        assert all(len(part) >= 3 for part in parts)

    def test_low_alpha_more_skewed_than_iid(self, dataset):
        skewed = partition_dirichlet(dataset, 5, alpha=0.1, seed=0)
        iid = partition_iid(dataset, 5, seed=0)
        skewed_entropy = partition_statistics(skewed, dataset)["topic_entropy_mean"]
        iid_entropy = partition_statistics(iid, dataset)["topic_entropy_mean"]
        assert skewed_entropy < iid_entropy

    def test_invalid_parameters(self, dataset):
        with pytest.raises(ValueError):
            partition_dirichlet(dataset, 0)
        with pytest.raises(ValueError):
            partition_dirichlet(dataset, 2, alpha=0.0)
        with pytest.raises(ValueError):
            partition_dirichlet(dataset, 80, min_samples=5)


class TestParameterServer:
    def test_snapshot_is_independent_copy(self, tiny_model):
        server = ParameterServer(tiny_model)
        snapshot = server.model_snapshot()
        snapshot.get_expert(0, 0).w_gate.weight.data[...] = 0.0
        assert not np.allclose(server.global_model.get_expert(0, 0).w_gate.weight.data, 0.0)

    def test_aggregate_updates_round_counter_and_contributions(self, tiny_model):
        server = ParameterServer(tiny_model)
        state = {k: np.zeros_like(v) for k, v in tiny_model.expert_state(0, 0).items()}
        server.aggregate([ExpertUpdate(0, 0, 0, state, 1.0)])
        assert server.round_index == 1
        assert server.contribution_counts[(0, 0)] == 1
        assert (0, 0) not in server.untouched_experts()

    def test_expert_states_bulk_access(self, tiny_model):
        server = ParameterServer(tiny_model)
        states = server.expert_states([(0, 0), (1, 1)])
        assert set(states) == {(0, 0), (1, 1)}


class ConstantMethod(FederatedFineTuner):
    """A minimal method used to exercise the shared round loop."""

    name = "constant"

    def participant_round(self, participant, round_index):
        model = self.server.model_snapshot()
        batches = participant.local_batches(self.config.batch_size, max_batches=1,
                                            max_seq_len=model.config.max_seq_len)
        result = participant.local_finetune(model, batches,
                                            learning_rate=self.config.learning_rate)
        updates = [ExpertUpdate(participant.participant_id, 0, 0, model.expert_state(0, 0), 1.0)]
        return ParticipantRoundResult(
            updates=updates,
            breakdown=RoundCostBreakdown(training=1.0),
            train_loss=result.mean_loss,
        )


class TestRoundLoop:
    @pytest.fixture()
    def setup(self, vocab, tiny_config):
        dataset = make_gsm8k_like(vocab=vocab, num_samples=60, seed=5)
        train, test = dataset.split(seed=5)
        parts = partition_dirichlet(train, 3, alpha=0.5, seed=0)
        participants = [
            Participant(i, train.subset(part), resources=ParticipantResources(8, 4), seed=i)
            for i, part in enumerate(parts)
        ]
        server = ParameterServer(MoETransformer(tiny_config))
        config = RunConfig(batch_size=8, max_local_batches=1, eval_max_samples=12)
        return server, participants, test, config

    def test_requires_participants(self, setup):
        server, _, test, config = setup
        with pytest.raises(ValueError):
            ConstantMethod(server, [], test, config=config)

    def test_run_produces_history_and_time(self, setup):
        server, participants, test, config = setup
        method = ConstantMethod(server, participants, test, config=config)
        result = method.run(num_rounds=2)
        assert len(result.rounds) == 2
        assert result.total_time == pytest.approx(2.0)  # slowest participant 1s per round
        assert len(result.tracker.history) == 2
        assert result.method == "constant"

    def test_participant_subsampling(self, setup):
        server, participants, test, config = setup
        config.participants_per_round = 2
        method = ConstantMethod(server, participants, test, config=config)
        selected = method.select_participants(0)
        assert len(selected) == 2

    def test_stop_at_target(self, setup):
        server, participants, test, config = setup
        method = ConstantMethod(server, participants, test, config=config)
        result = method.run(num_rounds=5, stop_at_target=True, target_metric=0.0)
        assert len(result.rounds) == 1

    def test_invalid_round_count(self, setup):
        server, participants, test, config = setup
        method = ConstantMethod(server, participants, test, config=config)
        with pytest.raises(ValueError):
            method.run(num_rounds=0)

    def test_exchange_plan_costs(self):
        memory = MemoryModel(ARCHITECTURE_DESCRIPTORS["llama-moe"])
        cost = CostModel(CONSUMER_GPU, memory)
        plan = ExchangePlan(download_experts=4, upload_experts=2)
        assert plan.communication_seconds(cost) > 0
        assert plan.total_bytes(cost) == pytest.approx(6 * memory.params_per_expert * 2)

    def test_exchange_plan_quantized_wire_precision(self):
        """Quantized exchanges charge bits/8 bytes per parameter, not FP16."""
        from repro.federated import bytes_per_param_for_bits

        memory = MemoryModel(ARCHITECTURE_DESCRIPTORS["llama-moe"])
        cost = CostModel(CONSUMER_GPU, memory)
        fp16 = ExchangePlan(download_experts=4, upload_experts=4)
        int4 = ExchangePlan.for_bits(download_experts=4, upload_experts=4, bits=4)
        assert bytes_per_param_for_bits(4) == pytest.approx(0.5)
        assert int4.bytes_per_param == pytest.approx(0.5)
        assert int4.total_bytes(cost) == pytest.approx(fp16.total_bytes(cost) / 4)
        assert int4.communication_seconds(cost) == \
            pytest.approx(fp16.communication_seconds(cost) / 4)
        with pytest.raises(ValueError):
            bytes_per_param_for_bits(0)
