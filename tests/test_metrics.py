"""Tests for ROUGE-L, model evaluation and the time-to-accuracy tracker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Adam
from repro.data import make_dolly_like, make_gsm8k_like, make_batches
from repro.metrics import (
    PerformanceTracker,
    corpus_rouge_l,
    evaluate_model,
    relative_accuracy,
    rouge_l,
)
from repro.models import MoETransformer


class TestRougeL:
    def test_identical_sequences_score_one(self):
        assert rouge_l([1, 2, 3, 4], [1, 2, 3, 4]) == pytest.approx(1.0)

    def test_disjoint_sequences_score_zero(self):
        assert rouge_l([1, 2, 3], [4, 5, 6]) == 0.0

    def test_empty_sequences(self):
        assert rouge_l([], [1, 2]) == 0.0
        assert rouge_l([1, 2], []) == 0.0

    def test_subsequence_scores_between_zero_and_one(self):
        score = rouge_l([1, 9, 2, 8, 3], [1, 2, 3])
        assert 0.0 < score < 1.0

    def test_order_matters(self):
        in_order = rouge_l([1, 2, 3, 4], [1, 2, 3, 4])
        reversed_score = rouge_l([4, 3, 2, 1], [1, 2, 3, 4])
        assert in_order > reversed_score

    def test_known_lcs_value(self):
        # candidate [1,3,5], reference [1,2,3,4,5]: LCS = 3
        score = rouge_l([1, 3, 5], [1, 2, 3, 4, 5], beta=1.0)
        precision, recall = 3 / 3, 3 / 5
        expected = 2 * precision * recall / (precision + recall)
        assert score == pytest.approx(expected)

    def test_corpus_rouge_is_mean(self):
        candidates = [[1, 2], [3, 4]]
        references = [[1, 2], [9, 9]]
        assert corpus_rouge_l(candidates, references) == pytest.approx(0.5)

    def test_corpus_requires_alignment(self):
        with pytest.raises(ValueError):
            corpus_rouge_l([[1]], [[1], [2]])

    def test_corpus_empty_is_zero(self):
        assert corpus_rouge_l([], []) == 0.0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=12))
def test_rouge_identity_property(sequence):
    assert rouge_l(sequence, sequence) == pytest.approx(1.0)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=10),
    st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=10),
)
def test_rouge_bounded_property(a, b):
    assert 0.0 <= rouge_l(a, b) <= 1.0


class TestEvaluateModel:
    def test_classification_metric_in_unit_interval(self, vocab, tiny_config):
        model = MoETransformer(tiny_config)
        dataset = make_gsm8k_like(vocab=vocab, num_samples=30, seed=0)
        value = evaluate_model(model, dataset, max_samples=20)
        assert 0.0 <= value <= 1.0

    def test_generation_metric_in_unit_interval(self, vocab, tiny_config):
        model = MoETransformer(tiny_config)
        dataset = make_dolly_like(vocab=vocab, num_samples=20, seed=0)
        value = evaluate_model(model, dataset, max_samples=10)
        assert 0.0 <= value <= 1.0

    @pytest.mark.slow
    def test_training_improves_generation_metric(self, vocab, tiny_config):
        model = MoETransformer(tiny_config)
        dataset = make_dolly_like(vocab=vocab, num_samples=60, seed=1)
        before = evaluate_model(model, dataset, max_samples=30, seed=1)
        batches = make_batches(dataset.samples, 16, vocab, seed=0,
                               max_seq_len=tiny_config.max_seq_len)
        optimizer = Adam(list(model.parameters()), lr=5e-3)
        for _ in range(6):
            for batch in batches:
                optimizer.zero_grad()
                loss = model.compute_loss(batch.input_ids, labels=batch.labels,
                                          attention_mask=batch.attention_mask)
                loss.backward()
                optimizer.step()
        after = evaluate_model(model, dataset, max_samples=30, seed=1)
        assert after > before

    def test_empty_dataset_rejected(self, vocab, tiny_config):
        model = MoETransformer(tiny_config)
        dataset = make_gsm8k_like(vocab=vocab, num_samples=10, seed=0).subset([])
        with pytest.raises(ValueError):
            evaluate_model(model, dataset)

    def test_model_left_in_train_mode(self, vocab, tiny_config):
        model = MoETransformer(tiny_config)
        dataset = make_gsm8k_like(vocab=vocab, num_samples=10, seed=0)
        evaluate_model(model, dataset, max_samples=5)
        assert model.training

    def test_relative_accuracy(self):
        assert relative_accuracy(0.3, 0.6) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            relative_accuracy(0.3, 0.0)


class TestPerformanceTracker:
    def test_record_and_relative_accuracy(self):
        tracker = PerformanceTracker(target=0.5)
        entry = tracker.record(0, simulated_time=10.0, metric_value=0.25)
        assert entry.relative_accuracy == pytest.approx(0.5)

    def test_time_to_target(self):
        tracker = PerformanceTracker(target=0.5)
        tracker.record(0, 10.0, 0.2)
        tracker.record(1, 20.0, 0.55)
        tracker.record(2, 30.0, 0.6)
        assert tracker.time_to_target() == pytest.approx(20.0)
        assert tracker.reached_target()

    def test_time_to_target_not_reached(self):
        tracker = PerformanceTracker(target=0.9)
        tracker.record(0, 10.0, 0.2)
        assert tracker.time_to_target() is None
        assert not tracker.reached_target()

    def test_time_to_custom_target(self):
        tracker = PerformanceTracker(target=0.9)
        tracker.record(0, 5.0, 0.3)
        assert tracker.time_to_target(0.25) == pytest.approx(5.0)

    def test_best_and_final_metric(self):
        tracker = PerformanceTracker(target=1.0)
        tracker.record(0, 1.0, 0.4)
        tracker.record(1, 2.0, 0.7)
        tracker.record(2, 3.0, 0.6)
        assert tracker.best_metric() == pytest.approx(0.7)
        assert tracker.final_metric() == pytest.approx(0.6)

    def test_series_rendering(self):
        tracker = PerformanceTracker(target=1.0)
        tracker.record(0, 1.0, 0.4, train_loss=2.0)
        series = tracker.as_series()
        assert series[0]["round"] == 0
        assert series[0]["train_loss"] == pytest.approx(2.0)

    def test_empty_tracker_defaults(self):
        tracker = PerformanceTracker(target=1.0)
        assert tracker.best_metric() == 0.0
        assert tracker.final_metric() == 0.0
        assert tracker.times() == []

    def test_empty_history_queries_and_totals(self):
        tracker = PerformanceTracker(target=0.5)
        assert tracker.time_to_target() is None
        assert not tracker.reached_target()
        assert tracker.total_comm_bytes() == 0.0
        assert tracker.total_edge_bytes() == 0.0
        assert tracker.total_payloads_lost() == 0
        assert tracker.total_payloads_corrupted() == 0
        assert tracker.as_series() == []

    def test_non_positive_target_gives_zero_relative_accuracy(self):
        for target in (0.0, -1.0):
            tracker = PerformanceTracker(target=target)
            entry = tracker.record(0, 1.0, 0.5)
            assert entry.relative_accuracy == 0.0
            assert tracker.relative_accuracies() == [0.0]

    def test_target_never_reached_over_many_rounds(self):
        tracker = PerformanceTracker(target=0.9)
        for i in range(5):
            tracker.record(i, float(i + 1), 0.1 * i)  # plateaus at 0.4
        assert tracker.time_to_target() is None
        assert not tracker.reached_target()
        # a custom (lower) target can still be answered from the same history
        assert tracker.time_to_target(0.2) == pytest.approx(3.0)

    def test_wire_fields_recorded_and_totalled(self):
        tracker = PerformanceTracker(target=1.0)
        tracker.record(0, 1.0, 0.1, comm_bytes=100.0, wire_seconds=0.5,
                       payloads_lost=1, payloads_corrupted=2, edge_bytes=64.0)
        tracker.record(1, 2.0, 0.2, comm_bytes=50.0, wire_seconds=0.25,
                       payloads_corrupted=1, edge_bytes=32.0)
        assert tracker.total_comm_bytes() == pytest.approx(150.0)
        assert tracker.total_edge_bytes() == pytest.approx(96.0)
        assert tracker.total_payloads_lost() == 1
        assert tracker.total_payloads_corrupted() == 3
        row = tracker.as_series()[0]
        assert row["wire_seconds"] == pytest.approx(0.5)
        assert row["payloads_lost"] == 1
        assert row["payloads_corrupted"] == 2
        assert row["edge_bytes"] == pytest.approx(64.0)
