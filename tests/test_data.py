"""Tests for the synthetic data substrate: vocab, generators, datasets, loading."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    DATASET_SPECS,
    IGNORE_INDEX,
    SyntheticTaskGenerator,
    TaskType,
    Vocabulary,
    collate,
    iter_batches,
    make_batches,
    make_dataset,
    make_dolly_like,
    make_gsm8k_like,
    make_mmlu_like,
    make_piqa_like,
)


class TestVocabulary:
    def test_regions_do_not_overlap(self):
        vocab = Vocabulary(size=128, num_topics=8)
        choice = set(vocab.choice_tokens())
        digits = set(vocab.digit_tokens())
        topics = set()
        for topic in range(vocab.num_topics):
            topics |= set(vocab.topic_block(topic))
        assert not (choice & digits)
        assert not (choice & topics)
        assert not (digits & topics)
        assert vocab.PAD not in choice | digits | topics

    def test_choice_token_roundtrip(self):
        vocab = Vocabulary()
        for c in range(vocab.num_choices):
            assert vocab.choice_from_token(vocab.choice_token(c)) == c
        with pytest.raises(ValueError):
            vocab.choice_token(99)
        with pytest.raises(ValueError):
            vocab.choice_from_token(vocab.PAD)

    def test_digit_token_roundtrip(self):
        vocab = Vocabulary()
        for d in range(10):
            assert vocab.digit_from_token(vocab.digit_token(d)) == d

    def test_topic_of_token(self):
        vocab = Vocabulary(size=128, num_topics=4)
        for topic in range(4):
            block = vocab.topic_block(topic)
            assert vocab.topic_of_token(block.start) == topic
        assert vocab.topic_of_token(vocab.PAD) == -1

    def test_too_small_vocab_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary(size=20, num_topics=8)

    def test_topic_out_of_range(self):
        with pytest.raises(ValueError):
            Vocabulary().topic_block(99)


class TestSyntheticTaskGenerator:
    @pytest.fixture()
    def vocab(self):
        return Vocabulary(size=96, num_topics=4)

    def test_generation_sample_structure(self, vocab):
        generator = SyntheticTaskGenerator(vocab, TaskType.GENERATION, seed=0)
        sample = generator.sample(sample_id=5)
        assert sample.sample_id == 5
        assert sample.input_ids[0] == vocab.BOS
        assert sample.input_ids[sample.prompt_length] == vocab.ANSWER
        assert sample.input_ids[-1] == vocab.EOS
        assert sample.task_type is TaskType.GENERATION

    def test_generation_answer_rule_is_deterministic(self, vocab):
        generator = SyntheticTaskGenerator(vocab, TaskType.GENERATION, answer_length=4, seed=1)
        sample = generator.sample()
        content = sample.input_ids[2: sample.prompt_length - 1]
        expected = np.sort(content[:4])
        assert np.array_equal(sample.answer_ids[1:-1], expected)

    def test_math_sample_answer_follows_topic_rule(self, vocab):
        generator = SyntheticTaskGenerator(vocab, TaskType.MATH, seed=2)
        for _ in range(10):
            sample = generator.sample()
            prompt = sample.input_ids[: sample.prompt_length]
            digits = [vocab.digit_from_token(t) for t in prompt if t in vocab.digit_tokens()]
            assert len(digits) == 2  # two operand digits embedded in the prompt
            assert sample.label == (3 * sample.topic + 7) % 10
            assert sample.answer_ids[1] == vocab.digit_token(sample.label)

    def test_choice_sample_label_rule(self, vocab):
        generator = SyntheticTaskGenerator(vocab, TaskType.MULTIPLE_CHOICE, seed=3)
        for _ in range(10):
            sample = generator.sample()
            first_content = int(sample.input_ids[2])
            expected = (sample.topic + first_content) % vocab.num_choices
            assert sample.label == expected

    def test_forced_topic(self, vocab):
        generator = SyntheticTaskGenerator(vocab, TaskType.GENERATION, seed=4)
        sample = generator.sample(topic=2)
        assert sample.topic == 2
        block = vocab.topic_block(2)
        content = sample.input_ids[2: sample.prompt_length - 1]
        assert all(t in block for t in content)

    def test_generate_assigns_consecutive_ids(self, vocab):
        generator = SyntheticTaskGenerator(vocab, TaskType.MATH, seed=5)
        samples = generator.generate(5, start_id=10)
        assert [s.sample_id for s in samples] == list(range(10, 15))

    def test_topic_skew_produces_imbalance(self, vocab):
        generator = SyntheticTaskGenerator(vocab, TaskType.GENERATION, topic_skew=1.5, seed=6)
        topics = [generator.sample().topic for _ in range(200)]
        counts = np.bincount(topics, minlength=vocab.num_topics)
        assert counts.max() > 2 * counts.min()

    def test_min_prompt_length_validation(self, vocab):
        with pytest.raises(ValueError):
            SyntheticTaskGenerator(vocab, TaskType.MATH, mean_prompt_length=2)


class TestDatasets:
    def test_all_four_factories(self):
        for factory in (make_dolly_like, make_gsm8k_like, make_mmlu_like, make_piqa_like):
            dataset = factory(num_samples=20, seed=0)
            assert len(dataset) == 20

    def test_specs_metric_types(self):
        assert DATASET_SPECS["dolly"].metric == "rouge_l"
        assert DATASET_SPECS["gsm8k"].metric == "accuracy"
        assert DATASET_SPECS["mmlu"].task_type is TaskType.MULTIPLE_CHOICE

    def test_paper_targets_recorded(self):
        assert DATASET_SPECS["dolly"].paper_target == pytest.approx(0.5)
        assert DATASET_SPECS["gsm8k"].paper_target == pytest.approx(0.62)
        assert DATASET_SPECS["mmlu"].paper_target == pytest.approx(0.75)
        assert DATASET_SPECS["piqa"].paper_target == pytest.approx(0.8)

    def test_dolly_sequences_longer_than_gsm8k(self):
        dolly = make_dolly_like(num_samples=50, seed=1)
        gsm = make_gsm8k_like(num_samples=50, seed=1)
        assert dolly.mean_length() > gsm.mean_length()

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            make_dataset("imagenet")

    def test_split_is_disjoint_and_complete(self):
        dataset = make_mmlu_like(num_samples=40, seed=2)
        train, test = dataset.split(train_fraction=0.8, seed=0)
        assert len(train) == 32 and len(test) == 8
        train_ids = {s.sample_id for s in train.samples}
        test_ids = {s.sample_id for s in test.samples}
        assert not (train_ids & test_ids)

    def test_split_invalid_fraction(self):
        with pytest.raises(ValueError):
            make_mmlu_like(num_samples=10).split(train_fraction=1.5)

    def test_subset_preserves_spec(self):
        dataset = make_piqa_like(num_samples=30, seed=3)
        subset = dataset.subset([0, 2, 4])
        assert len(subset) == 3
        assert subset.spec is dataset.spec
        assert subset[0] is dataset[0]


class TestCollateAndBatches:
    @pytest.fixture()
    def dataset(self):
        return make_gsm8k_like(num_samples=20, seed=4)

    def test_collate_pads_to_longest(self, dataset):
        batch = collate(dataset.samples[:4], pad_id=dataset.vocab.PAD)
        lengths = [s.length for s in dataset.samples[:4]]
        assert batch.seq_len == max(lengths)
        assert batch.batch_size == 4
        assert batch.num_tokens == sum(lengths)

    def test_labels_only_on_answer_region(self, dataset):
        batch = collate(dataset.samples[:4], pad_id=dataset.vocab.PAD)
        for row, sample in enumerate(batch.samples):
            supervised = np.flatnonzero(batch.labels[row] != IGNORE_INDEX)
            # supervision starts one position before the answer (predicting the
            # ANSWER marker) and covers every answer token
            assert len(supervised) == len(sample.answer_ids)
            assert supervised[0] == sample.prompt_length - 1

    def test_collate_empty_rejected(self, dataset):
        with pytest.raises(ValueError):
            collate([], pad_id=0)

    def test_max_seq_len_truncation(self, dataset):
        batch = collate(dataset.samples[:4], pad_id=0, max_seq_len=8)
        assert batch.seq_len == 8

    def test_iter_batches_covers_all_samples(self, dataset):
        batches = list(iter_batches(dataset.samples, batch_size=6, pad_id=0, shuffle=False))
        assert sum(b.batch_size for b in batches) == len(dataset)

    def test_iter_batches_drop_last(self, dataset):
        batches = list(iter_batches(dataset.samples, batch_size=6, pad_id=0, drop_last=True))
        assert all(b.batch_size == 6 for b in batches)

    def test_make_batches_shuffle_determinism(self, dataset):
        a = make_batches(dataset.samples, 5, dataset.vocab, seed=3)
        b = make_batches(dataset.samples, 5, dataset.vocab, seed=3)
        assert np.array_equal(a[0].sample_ids, b[0].sample_ids)

    def test_invalid_batch_size(self, dataset):
        with pytest.raises(ValueError):
            list(iter_batches(dataset.samples, batch_size=0, pad_id=0))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=8))
def test_collate_shapes_property(num_samples, batch_size):
    dataset = make_gsm8k_like(num_samples=max(num_samples, 1), seed=0)
    batches = make_batches(dataset.samples, batch_size, dataset.vocab, shuffle=False)
    assert sum(b.batch_size for b in batches) == len(dataset)
    for batch in batches:
        assert batch.input_ids.shape == batch.labels.shape == batch.attention_mask.shape
