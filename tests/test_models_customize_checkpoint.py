"""Tests for customized MoE construction and checkpoint save/load APIs."""

import os

import numpy as np
import pytest

from repro.models import (
    MoETransformer,
    customized_moe,
    load_checkpoint,
    load_model,
    resolve_exps_config,
    save_checkpoint,
    tiny_moe,
)


class TestResolveExpsConfig:
    def test_int_broadcasts(self):
        assert resolve_exps_config(3, 4, [8, 8, 8, 8]) == [3, 3, 3, 3]

    def test_list_passthrough(self):
        assert resolve_exps_config([1, 2, 3], 3, [8, 8, 8]) == [1, 2, 3]

    def test_list_wrong_length(self):
        with pytest.raises(ValueError):
            resolve_exps_config([1, 2], 3, [8, 8, 8])

    def test_dict_overrides_defaults(self):
        assert resolve_exps_config({1: 2}, 3, [8, 8, 8]) == [8, 2, 8]

    def test_dict_bad_layer(self):
        with pytest.raises(KeyError):
            resolve_exps_config({7: 2}, 3, [8, 8, 8])

    def test_zero_experts_rejected(self):
        with pytest.raises(ValueError):
            resolve_exps_config(0, 2, [4, 4])


class TestCustomizedMoE:
    def test_expert_counts_change(self, tiny_model):
        custom = customized_moe(tiny_model, [2, 3])
        assert custom.local_experts_per_layer() == [2, 3]

    def test_non_expert_parameters_copied(self, tiny_model):
        custom = customized_moe(tiny_model, 2)
        assert np.allclose(custom.token_embedding.weight.data,
                           tiny_model.token_embedding.weight.data)
        assert np.allclose(custom.blocks[0].attn.q_proj.weight.data,
                           tiny_model.blocks[0].attn.q_proj.weight.data)

    def test_kept_experts_copied_in_order(self, tiny_model):
        custom = customized_moe(tiny_model, 2)
        for layer in range(tiny_model.num_layers):
            for expert in range(2):
                assert np.allclose(
                    custom.get_expert(layer, expert).weight_vector(),
                    tiny_model.get_expert(layer, expert).weight_vector(),
                )

    def test_gate_rows_transferred(self, tiny_model):
        custom = customized_moe(tiny_model, 2)
        original_gate = tiny_model.blocks[0].moe.gate.proj.weight.data
        assert np.allclose(custom.blocks[0].moe.gate.proj.weight.data, original_gate[:2])

    def test_growing_expert_count(self, tiny_model):
        grown = customized_moe(tiny_model, 6)
        assert grown.local_experts_per_layer() == [6, 6]
        # original experts preserved
        assert np.allclose(grown.get_expert(0, 0).weight_vector(),
                           tiny_model.get_expert(0, 0).weight_vector())

    def test_top_k_violation_rejected(self, tiny_model):
        with pytest.raises(ValueError):
            customized_moe(tiny_model, 1)  # top_k=2 > 1 expert

    def test_custom_model_forward_and_loss(self, tiny_model, tiny_config):
        custom = customized_moe(tiny_model, [2, 4])
        ids = np.random.default_rng(0).integers(0, tiny_config.vocab_size, size=(2, 10))
        loss = custom.compute_loss(ids)
        assert np.isfinite(loss.item())


class TestCheckpoints:
    def test_save_load_roundtrip(self, tiny_model, tmp_path):
        path = os.path.join(tmp_path, "model.npz")
        save_checkpoint(tiny_model, path)
        loaded = load_checkpoint(path)
        for (_, a), (_, b) in zip(tiny_model.named_parameters(), loaded.named_parameters()):
            assert np.allclose(a.data, b.data)
        assert loaded.config.name == tiny_model.config.name

    def test_load_model_without_customization(self, tiny_model, tmp_path):
        path = os.path.join(tmp_path, "model.npz")
        save_checkpoint(tiny_model, path)
        loaded = load_model(path)
        assert loaded.local_experts_per_layer() == tiny_model.local_experts_per_layer()

    def test_load_model_with_exps_config(self, tiny_model, tmp_path):
        path = os.path.join(tmp_path, "model.npz")
        save_checkpoint(tiny_model, path)
        custom = load_model(path, exps_config=[2, 3])
        assert custom.local_experts_per_layer() == [2, 3]
        assert np.allclose(custom.get_expert(0, 0).weight_vector(),
                           tiny_model.get_expert(0, 0).weight_vector())

    def test_load_model_accepts_path_without_extension(self, tiny_model, tmp_path):
        path = os.path.join(tmp_path, "ckpt")
        save_checkpoint(tiny_model, path)
        loaded = load_model(path)
        assert loaded is not None

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(os.path.join(tmp_path, "nope.npz"))

    def test_checkpoint_preserves_per_layer_expert_lists(self, tmp_path, vocab):
        config = tiny_moe(vocab_size=vocab.size)
        config = config.with_experts([2, 4])
        model = MoETransformer(config)
        path = os.path.join(tmp_path, "custom.npz")
        save_checkpoint(model, path)
        loaded = load_checkpoint(path)
        assert loaded.local_experts_per_layer() == [2, 4]


class TestSaveCheckpointReturnPath:
    """Regression: the returned path must name the file np.savez actually wrote."""

    @pytest.mark.parametrize("name", ["model", "model.npz", "model.npz.bak",
                                      "model.NPZ"])
    def test_returned_path_exists_for_any_suffix(self, tiny_model, tmp_path, name):
        returned = save_checkpoint(tiny_model, os.path.join(tmp_path, name))
        assert os.path.exists(returned), returned
        assert returned.endswith(".npz")
        # Exactly one file was written and it is the one reported.
        assert os.listdir(tmp_path) == [os.path.basename(returned)]

    def test_accepts_pathlike(self, tiny_model, tmp_path):
        returned = save_checkpoint(tiny_model, tmp_path / "nested" / "ckpt")
        assert os.path.exists(returned)
        assert returned.endswith(os.path.join("nested", "ckpt.npz"))

    def test_returned_path_loads_back(self, tiny_model, tmp_path):
        returned = save_checkpoint(tiny_model, os.path.join(tmp_path, "noext"))
        loaded = load_checkpoint(returned)
        for (_, a), (_, b) in zip(tiny_model.named_parameters(),
                                  loaded.named_parameters()):
            assert np.array_equal(a.data, b.data)


class TestCompactModelRoundTrips:
    """load_model(exps_config=...) round-trips for customized/compact models."""

    def test_compact_reload_preserves_all_retained_experts(self, tiny_model, tmp_path):
        path = save_checkpoint(tiny_model, os.path.join(tmp_path, "full"))
        compact = load_model(path, exps_config={0: 2, 1: 3})
        assert compact.local_experts_per_layer() == [2, 3]
        # Experts are retained in original-id order; every kept slot must hold
        # the exact pre-trained parameters.
        for layer, kept in enumerate([2, 3]):
            for slot in range(kept):
                assert np.array_equal(
                    compact.get_expert(layer, slot).weight_vector(),
                    tiny_model.get_expert(layer, slot).weight_vector())

    def test_compact_reload_preserves_non_expert_parameters(self, tiny_model, tmp_path):
        path = save_checkpoint(tiny_model, os.path.join(tmp_path, "full"))
        compact = load_model(path, exps_config=2)
        full_state = tiny_model.state_dict()
        compact_state = compact.state_dict()
        shared = [name for name in compact_state
                  if "expert" not in name and "gate" not in name]
        assert shared
        for name in shared:
            assert np.array_equal(compact_state[name], full_state[name]), name

    def test_compact_checkpoint_roundtrips_as_saved_architecture(self, tiny_model,
                                                                 tmp_path):
        """Save a compact model, reload it, and reload it compacted further."""
        first = save_checkpoint(tiny_model, os.path.join(tmp_path, "full"))
        compact = load_model(first, exps_config=[3, 3])
        second = save_checkpoint(compact, os.path.join(tmp_path, "compact"))

        reloaded = load_checkpoint(second)
        assert reloaded.local_experts_per_layer() == [3, 3]
        for (_, a), (_, b) in zip(compact.named_parameters(),
                                  reloaded.named_parameters()):
            assert np.array_equal(a.data, b.data)

        smaller = load_model(second, exps_config=2)
        assert smaller.local_experts_per_layer() == [2, 2]
        for layer in range(2):
            for slot in range(2):
                assert np.array_equal(
                    smaller.get_expert(layer, slot).weight_vector(),
                    compact.get_expert(layer, slot).weight_vector())

    def test_compact_model_trains_after_reload(self, tiny_model, tmp_path, vocab,
                                               gsm_batches):
        path = save_checkpoint(tiny_model, os.path.join(tmp_path, "full"))
        compact = load_model(path, exps_config=2)
        batch = gsm_batches[0]
        loss = compact.compute_loss(batch.input_ids, labels=batch.labels,
                                    attention_mask=batch.attention_mask)
        assert np.isfinite(loss.item())
