"""The socket-backed aggregation service (repro.service).

Covers the protocol envelope, bit-identity of service folds against the
serial and pooled planes (shard matrix, tree pre-folds, and full runs on the
sharded 3-tier topology — the acceptance invariant), kill+resume durability
through live servers, failover (hard-killed server mid-round → respawn +
round replay), the ``repro_service_*`` telemetry, and the pool machinery
(config wiring, pickling, idempotent close, token hygiene).
"""

from __future__ import annotations

import pickle
import time

import numpy as np
import pytest

from repro.federated import (
    AggregationTree,
    ParameterServer,
    RunConfig,
    ShardedParameterServer,
)
from repro.obs import MetricsRegistry
from repro.runtime import latest_checkpoint, make_aggregation_pool
from repro.runtime.executor import frame_update
from repro.service import (
    OP_NAMES,
    PROTOCOL_VERSION,
    ServiceAggregationPool,
    ServiceClient,
    ServiceError,
    ServiceUnavailableError,
    UnknownCodecError,
    decode_message,
    encode_message,
)
from repro.service.protocol import (
    OP_ADD,
    OP_FLUSH_SHARD,
    OP_HELLO,
    OP_OK,
    OP_PING,
    ServiceProtocolError,
)
from repro.service.server import _MAX_PENDING_TOKENS, InProcessServer
from repro.comm.stream import FrameStream

from test_parallel_aggregation import _assert_models_equal, _updates
from test_runtime import ConstantMethod, build_federation
from repro.models import MoETransformer

STRATEGIES = [None, "fedavg", "trimmed_mean", "median", "staleness_fedavg"]

#: the acceptance topology: expert shards at the root under a two-tier
#: aggregation tree (participants → edges → super-edges → root)
SHARDED_3TIER = dict(num_shards=2, edge_tiers=(2, 2), aggregation="trimmed_mean",
                     participants_per_round=4)


@pytest.fixture(scope="module")
def service_pool():
    """One socketpair-backed service plane shared by the fold matrix."""
    pool = ServiceAggregationPool(2, transport="socketpair")
    yield pool
    pool.close()


# ------------------------------------------------------------------- protocol
class TestProtocol:
    def test_round_trip_every_op(self):
        for op in OP_NAMES:
            body = {"op": OP_NAMES[op], "frames": [b"\x01\x02", 3]}
            assert decode_message(encode_message(op, body)) == (op, body)

    def test_bad_magic_rejected(self):
        message = bytearray(encode_message(OP_PING, None))
        message[:4] = b"RWP1"  # right family, wrong layer
        with pytest.raises(ServiceProtocolError, match="magic"):
            decode_message(bytes(message))

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="op"):
            encode_message(999, None)
        message = bytearray(encode_message(OP_PING, None))
        message[4] = 250
        with pytest.raises(ServiceProtocolError, match="unknown service op"):
            decode_message(bytes(message))

    def test_torn_body_rejected(self):
        message = encode_message(OP_ADD, {"token": "t", "frames": []})
        with pytest.raises(ServiceProtocolError, match="undecodable"):
            decode_message(message[: len(message) // 2 + 5])


# ------------------------------------------------------- fold-plane identity
class TestServiceFoldsBitEqualSerial:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_sharded_fold_matches_serial(self, tiny_config, service_pool, strategy):
        serial_model = MoETransformer(tiny_config)
        service_model = MoETransformer(tiny_config)
        service_model.load_state_dict(serial_model.state_dict())
        updates = _updates(serial_model,
                           stalenesses=(strategy == "staleness_fedavg"))

        serial = ShardedParameterServer(serial_model, num_shards=4)
        serial_contrib = serial.aggregate(list(updates), strategy=strategy)
        service = ShardedParameterServer(service_model, num_shards=4)
        service.fold_pool = service_pool
        service_contrib = service.aggregate(list(updates), strategy=strategy)

        assert serial_contrib == service_contrib
        assert serial.last_shard_contributions == service.last_shard_contributions
        _assert_models_equal(serial_model, service_model)

    @pytest.mark.parametrize("tiers", [(2,), (3, 2), (2, 2, 2)])
    def test_tree_prefold_matches_serial(self, tiny_config, service_pool, tiers):
        serial_model = MoETransformer(tiny_config)
        service_model = MoETransformer(tiny_config)
        service_model.load_state_dict(serial_model.state_dict())
        updates = _updates(serial_model, num_participants=8)

        serial_tree = AggregationTree(tiers, latency_s=0.05)
        serial_contrib, serial_stats = serial_tree.aggregate(
            ParameterServer(serial_model), iter(updates), strategy="median")
        service_tree = AggregationTree(tiers, latency_s=0.05)
        service_contrib, service_stats = service_tree.aggregate(
            ParameterServer(service_model), iter(updates), strategy="median",
            pool=service_pool)

        assert serial_contrib == service_contrib
        assert serial_tree.last_tier_counts == service_tree.last_tier_counts
        assert serial_stats.total_bytes == service_stats.total_bytes
        _assert_models_equal(serial_model, service_model)

    def test_streaming_fold_matches_serial(self, tiny_config, service_pool):
        serial_model = MoETransformer(tiny_config)
        service_model = MoETransformer(tiny_config)
        service_model.load_state_dict(serial_model.state_dict())
        updates = _updates(serial_model)

        ShardedParameterServer(serial_model, num_shards=3).aggregate(
            iter(updates), streaming=True)
        service = ShardedParameterServer(service_model, num_shards=3)
        service.fold_pool = service_pool
        service.aggregate(iter(updates), streaming=True)
        _assert_models_equal(serial_model, service_model)

    def test_server_side_error_surfaces_as_service_error(self, tiny_config,
                                                         service_pool):
        model = MoETransformer(tiny_config)
        updates = [u for u in _updates(model, num_participants=2)]
        for update in updates:
            update.weight = 0.0
        service = ShardedParameterServer(model, num_shards=2)
        service.fold_pool = service_pool
        with pytest.raises(ServiceError, match="non-positive total weight"):
            service.aggregate(list(updates), streaming=True)


# ------------------------------------------------------------------ run level
class TestServiceRuns:
    def _run(self, vocab, tiny_config, **config_kwargs):
        server, participants, test, config = build_federation(
            vocab, tiny_config, **config_kwargs)
        tuner = ConstantMethod(server, participants, test, config=config)
        result = tuner.run(2)
        return result, tuner

    def test_service_run_matches_serial_and_pooled(self, vocab, tiny_config):
        """Acceptance: pooled and service backends are bit-identical to serial
        on the sharded 3-tier topology."""
        serial_result, serial_tuner = self._run(vocab, tiny_config,
                                                **SHARDED_3TIER)
        pooled_result, pooled_tuner = self._run(
            vocab, tiny_config, aggregation_executor="process",
            aggregation_workers=2, **SHARDED_3TIER)
        service_result, service_tuner = self._run(
            vocab, tiny_config, aggregation_executor="service",
            aggregation_workers=2, service_transport="socketpair",
            **SHARDED_3TIER)
        for a, b, c in zip(serial_result.rounds, pooled_result.rounds,
                           service_result.rounds):
            assert a.train_loss == b.train_loss == c.train_loss
            assert a.metric_value == b.metric_value == c.metric_value
            assert a.simulated_time == b.simulated_time == c.simulated_time
            assert a.edge_bytes == b.edge_bytes == c.edge_bytes
            assert a.tier_bytes == b.tier_bytes == c.tier_bytes
        _assert_models_equal(serial_tuner.server.global_model,
                             service_tuner.server.global_model)
        _assert_models_equal(pooled_tuner.server.global_model,
                             service_tuner.server.global_model)

    def test_service_run_over_tcp_matches_serial(self, vocab, tiny_config):
        """The same invariant through real spawned TCP servers."""
        knobs = dict(num_shards=2, edge_tiers=(2,), participants_per_round=3)
        serial_result, serial_tuner = self._run(vocab, tiny_config, **knobs)
        service_result, service_tuner = self._run(
            vocab, tiny_config, aggregation_executor="service",
            aggregation_workers=2, service_transport="tcp", **knobs)
        for a, b in zip(serial_result.rounds, service_result.rounds):
            assert a.train_loss == b.train_loss
            assert a.metric_value == b.metric_value
        _assert_models_equal(serial_tuner.server.global_model,
                             service_tuner.server.global_model)

    def test_service_resume_matches_uninterrupted(self, vocab, tiny_config,
                                                  tmp_path):
        """Kill+resume through live servers stays bit-identical."""
        knobs = dict(aggregation_executor="service",
                     service_transport="socketpair", aggregation_workers=2,
                     **SHARDED_3TIER)
        server, participants, test, config = build_federation(
            vocab, tiny_config, **knobs)
        expected_tuner = ConstantMethod(server, participants, test, config=config)
        expected = expected_tuner.run(4)

        durable = dict(knobs, checkpoint_every=2, checkpoint_dir=str(tmp_path))
        server, participants, test, config = build_federation(
            vocab, tiny_config, **durable)
        ConstantMethod(server, participants, test, config=config).run(2)
        snapshot = latest_checkpoint(str(tmp_path))
        assert snapshot is not None

        server, participants, test, config = build_federation(
            vocab, tiny_config, **durable)
        resumed_tuner = ConstantMethod(server, participants, test, config=config)
        resumed = resumed_tuner.run(4, resume_from=snapshot)

        assert resumed.tracker.as_series() == expected.tracker.as_series()
        for got, want in zip(resumed.rounds, expected.rounds):
            assert got.train_loss == want.train_loss
            assert got.metric_value == want.metric_value
            assert got.tier_bytes == want.tier_bytes
        _assert_models_equal(resumed_tuner.server.global_model,
                             expected_tuner.server.global_model)

    def test_backend_is_resumable_across_checkpoints(self, vocab, tiny_config,
                                                     tmp_path):
        """A run checkpointed under one fold backend resumes under another:
        the backends are bit-identical, so the executor fields are in the
        resumable set and must not trip the config-mismatch guard."""
        knobs = dict(num_shards=2, edge_tiers=(2,), participants_per_round=3)
        server, participants, test, config = build_federation(
            vocab, tiny_config, **knobs)
        expected_tuner = ConstantMethod(server, participants, test, config=config)
        expected = expected_tuner.run(4)

        durable = dict(knobs, checkpoint_every=2, checkpoint_dir=str(tmp_path))
        server, participants, test, config = build_federation(
            vocab, tiny_config, **durable)  # checkpointed under serial
        ConstantMethod(server, participants, test, config=config).run(2)
        snapshot = latest_checkpoint(str(tmp_path))

        server, participants, test, config = build_federation(
            vocab, tiny_config, aggregation_executor="service",
            service_transport="socketpair", aggregation_workers=2, **durable)
        resumed_tuner = ConstantMethod(server, participants, test, config=config)
        resumed = resumed_tuner.run(4, resume_from=snapshot)

        for got, want in zip(resumed.rounds, expected.rounds):
            assert got.train_loss == want.train_loss
            assert got.metric_value == want.metric_value
        _assert_models_equal(resumed_tuner.server.global_model,
                             expected_tuner.server.global_model)

    def test_on_resume_drops_orphaned_half_round_state(self, tiny_config):
        """A surviving server still holding a killed run's half-accumulated
        round is reset by the resume hook, so refolds start clean."""
        pool = ServiceAggregationPool(1, transport="socketpair")
        try:
            model = MoETransformer(tiny_config)
            framed = [frame_update(u) for u in _updates(model, num_participants=2)]
            pool._ensure_started()
            client = pool._clients[0]
            client.call(OP_ADD, {"token": "killed-run", "frames": framed})
            assert pool.server_stats()[0]["pending_tokens"] == 1
            pool.on_resume({})
            assert pool.server_stats()[0]["pending_tokens"] == 0
        finally:
            pool.close()


# ------------------------------------------------- compressed service wire
class TestServiceWireCodec:
    """``RunConfig(service_codec="wire")``: the round's original codec frames
    are forwarded to the servers verbatim (with per-job references for
    delta codecs), so compressed rounds ship compressed service bytes while
    staying bit-identical to serial — the tentpole acceptance invariant."""

    #: ``transport="wire"`` is what stamps each delivered update with its
    #: original codec frame — the bytes ``service_codec="wire"`` forwards
    WIRE_KNOBS = dict(SHARDED_3TIER, transport="wire", codec="topk:0.25:int4",
                      aggregation_executor="service",
                      service_transport="socketpair", aggregation_workers=2)

    def _run(self, vocab, tiny_config, **config_kwargs):
        server, participants, test, config = build_federation(
            vocab, tiny_config, **config_kwargs)
        tuner = ConstantMethod(server, participants, test, config=config)
        return tuner.run(2), tuner

    def test_wire_run_matches_serial(self, vocab, tiny_config):
        serial_result, serial_tuner = self._run(
            vocab, tiny_config,
            **dict(SHARDED_3TIER, transport="wire", codec="topk:0.25:int4"))
        wire_result, wire_tuner = self._run(
            vocab, tiny_config, service_codec="wire", service_window=3,
            **self.WIRE_KNOBS)
        for a, b in zip(serial_result.rounds, wire_result.rounds):
            assert a.train_loss == b.train_loss
            assert a.metric_value == b.metric_value
            assert a.edge_bytes == b.edge_bytes
            assert a.tier_bytes == b.tier_bytes
        _assert_models_equal(serial_tuner.server.global_model,
                             wire_tuner.server.global_model)

    def test_wire_saves_service_bytes_and_counts_payloads(self, vocab,
                                                          tiny_config,
                                                          tmp_path):
        """Forwarding topk:int4 frames verbatim must shrink the service wire
        well below the fp64 re-encode, with per-codec/per-tier/reference
        counters surfacing exactly what crossed it."""

        def service_bytes(tuner):
            registry = tuner.telemetry.registry
            return sum(c["value"] for c in registry.snapshot()["counters"]
                       if c["name"] == "repro_service_bytes_sent_total")

        _, fp64_tuner = self._run(
            vocab, tiny_config, telemetry=True,
            telemetry_dir=str(tmp_path / "fp64"), **self.WIRE_KNOBS)
        _, wire_tuner = self._run(
            vocab, tiny_config, service_codec="wire", telemetry=True,
            telemetry_dir=str(tmp_path / "wire"), **self.WIRE_KNOBS)

        # Only the leaf fan-in (the bulk at real scale — see the bench's
        # bytes-ratio gate) compresses; inner-tier partials stay fp64.  At
        # this 4-participant scale that still has to show a strict saving.
        assert service_bytes(wire_tuner) < 0.9 * service_bytes(fp64_tuner)
        registry = wire_tuner.telemetry.registry
        assert registry.counter_value("repro_service_frame_bytes_total",
                                      codec="topk:0.25:int4") > 0
        assert registry.counter_value("repro_service_reference_bytes_total") > 0
        # inner-tier folds (tier 1 of the two-tier tree) routed through servers
        assert registry.counter_value("repro_service_tier_folds_total",
                                      tier=1) > 0
        assert registry.counter_value("repro_service_tier_folds_total",
                                      tier=0) > 0

    def test_wire_resume_depth3_matches_uninterrupted(self, vocab, tiny_config,
                                                      tmp_path):
        """Kill+resume through live servers stays bit-identical on a depth-3
        tree with the compressed wire — replayed rounds reship their
        references with the flush, so resumed folds see identical inputs."""
        knobs = dict(self.WIRE_KNOBS, service_codec="wire",
                     edge_tiers=(2, 2, 2))
        server, participants, test, config = build_federation(
            vocab, tiny_config, **knobs)
        expected_tuner = ConstantMethod(server, participants, test, config=config)
        expected = expected_tuner.run(4)

        durable = dict(knobs, checkpoint_every=2, checkpoint_dir=str(tmp_path))
        server, participants, test, config = build_federation(
            vocab, tiny_config, **durable)
        ConstantMethod(server, participants, test, config=config).run(2)
        snapshot = latest_checkpoint(str(tmp_path))
        assert snapshot is not None

        server, participants, test, config = build_federation(
            vocab, tiny_config, **durable)
        resumed_tuner = ConstantMethod(server, participants, test, config=config)
        resumed = resumed_tuner.run(4, resume_from=snapshot)

        for got, want in zip(resumed.rounds, expected.rounds):
            assert got.train_loss == want.train_loss
            assert got.metric_value == want.metric_value
            assert got.tier_bytes == want.tier_bytes
        _assert_models_equal(resumed_tuner.server.global_model,
                             expected_tuner.server.global_model)

    def test_unknown_codec_rejected_with_typed_error(self):
        """An ADD frame declaring an unregistered codec dies as
        UnknownCodecError at validation — never a downstream decode/pickle
        failure — and is not retried (the pairing can never work)."""
        server = InProcessServer(name="codec")
        client = ServiceClient(lambda: FrameStream(server.connect()),
                               name="codec", retry_delay_s=0.0)
        try:
            bogus = b"RWP1" + bytes((1, 4)) + b"nope" + b"body-never-reached"
            with pytest.raises(UnknownCodecError, match="nope"):
                client.call(OP_ADD, {"token": "t", "frames": [(bogus, 0)]})
            with pytest.raises(ServiceProtocolError, match="not an RWP1"):
                client.call(OP_ADD, {"token": "t", "frames": [(b"garbage", 0)]})
            assert client.stats["reconnects"] == 0  # fail fast, no replay
        finally:
            client.shutdown()
            server.close()

    def test_hello_negotiation(self):
        """Matching versions ack with server identity; a mismatch is a typed,
        never-retried protocol error (old servers reject the op the same
        way, so incompatible pairs fail on connect, not mid-round)."""
        server = InProcessServer(name="versioned")
        client = ServiceClient(lambda: FrameStream(server.connect()),
                               name="versioned", retry_delay_s=0.0)
        try:
            ack = client.call(OP_HELLO, {"version": PROTOCOL_VERSION})
            assert ack["version"] == PROTOCOL_VERSION
            assert ack["name"] == "versioned"
            with pytest.raises(ServiceProtocolError, match="version"):
                client.call(OP_HELLO, {"version": PROTOCOL_VERSION + 1})
            assert client.stats["reconnects"] == 0
        finally:
            client.shutdown()
            server.close()


# ------------------------------------------------------------ ADD pipelining
class TestServiceWindow:
    """Failure modes of the pipelined ADD window: drops mid-window, flush
    ordering against the drain, and hard-killed servers under a full
    pipeline — all absorbed by whole-round fresh-token replay."""

    def _client(self, server, **kwargs):
        return ServiceClient(lambda: FrameStream(server.connect()),
                             name=server.name, retry_delay_s=0.0, **kwargs)

    def test_window_sizes_fold_identically(self, tiny_config):
        model = MoETransformer(tiny_config)
        framed = [frame_update(u) for u in _updates(model, num_participants=6)]
        results = []
        for window in (1, 2, 64):
            server = InProcessServer(name=f"w{window}")
            client = self._client(server, chunk_frames=1, window=window)
            try:
                result, _ = client.fold_shard(None, False, 0, framed)
                results.append(result)
            finally:
                client.shutdown()
                server.close()
        assert results[0] == results[1] == results[2]

    def test_connection_drop_mid_window_replays_whole_round(self, tiny_config):
        """A connection dying with unacknowledged ADDs in flight replays the
        round under a fresh token; the half-window is orphaned server-side."""
        server = InProcessServer(name="drop")
        client = self._client(server, chunk_frames=1, window=4)
        try:
            model = MoETransformer(tiny_config)
            framed = [frame_update(u)
                      for u in _updates(model, num_participants=6)]
            baseline, _ = client.fold_shard(None, False, 0, framed)

            real_send = client._send_request
            state = {"sends": 0}

            def flaky_send(stream, op, body):
                state["sends"] += 1
                if state["sends"] == 3:
                    # two ADDs already in flight, unacked (window=4 means no
                    # ack has been read yet) when the wire dies
                    stream.close()
                    raise ConnectionError("injected mid-window drop")
                return real_send(stream, op, body)

            client._send_request = flaky_send
            try:
                result, _ = client.fold_shard(None, False, 0, framed)
            finally:
                client._send_request = real_send
            assert result == baseline
            assert client.stats["retried_rounds"] == 1
            assert client.server_stats()["pending_tokens"] <= 1  # orphan only
        finally:
            client.shutdown()
            server.close()

    def test_flush_sent_only_after_window_drained(self, tiny_config):
        """Every ADD in the round is acknowledged before the flush leaves
        the client — and the final chunk rides the flush body, so a round
        of N chunks is N-1 ADDs plus one flush."""
        server = InProcessServer(name="drain")
        client = self._client(server, chunk_frames=1, window=3)
        try:
            model = MoETransformer(tiny_config)
            framed = [frame_update(u)
                      for u in _updates(model, num_participants=7)]
            events = []
            real_send, real_recv = client._send_request, client._recv_response

            def logged_send(stream, op, body):
                events.append(("send", op))
                return real_send(stream, op, body)

            def logged_recv(stream):
                events.append(("recv", None))
                return real_recv(stream)

            client._send_request, client._recv_response = logged_send, logged_recv
            try:
                result, _ = client.fold_shard(None, False, 0, framed)
            finally:
                client._send_request = real_send
                client._recv_response = real_recv
            assert result
            flush_at = events.index(("send", OP_FLUSH_SHARD))
            acks_before_flush = sum(1 for kind, _ in events[:flush_at]
                                    if kind == "recv")
            # one HELLO ack + one ack per ADD chunk (the final chunk rides
            # the flush, so len(framed) - 1 ADDs), all pre-flush
            assert acks_before_flush == 1 + (len(framed) - 1)
            assert client.stats["requests"] == 1 + (len(framed) - 1) + 1
        finally:
            client.shutdown()
            server.close()

    def test_sigkill_under_full_pipeline_replays(self, tiny_config):
        """SIGKILL of a spawned server with a full ADD window in flight heals
        by respawn + whole-round replay, bit-identically."""
        pool = ServiceAggregationPool(1, transport="tcp", retry_delay_s=0.01,
                                      chunk_frames=1, window=4)
        try:
            model = MoETransformer(tiny_config)
            framed = [frame_update(u)
                      for u in _updates(model, num_participants=6)]
            expected = pool.fold_shards(None, False, [(0, framed)])
            client = pool._clients[0]
            real_send = client._send_request
            state = {"killed": False}

            def killer_send(stream, op, body):
                if not state["killed"] and op == OP_ADD:
                    state["killed"] = True
                    pool._servers[0].kill()
                    time.sleep(0.05)  # let the SIGKILL land mid-window
                return real_send(stream, op, body)

            client._send_request = killer_send
            try:
                healed = pool.fold_shards(None, False, [(0, framed)])
            finally:
                client._send_request = real_send
            assert healed == expected
            assert client.stats["retried_rounds"] == 1
        finally:
            pool.close()


# ------------------------------------------------------------------- failover
class TestServiceFailover:
    def test_killed_server_mid_round_heals_by_respawn_and_replay(self, tiny_config):
        registry = MetricsRegistry()

        class FakeTelemetry:
            pass

        telemetry = FakeTelemetry()
        telemetry.registry = registry
        pool = ServiceAggregationPool(1, transport="tcp", retry_delay_s=0.01)
        pool.bind_telemetry(telemetry)
        try:
            model = MoETransformer(tiny_config)
            framed = [frame_update(u) for u in _updates(model, num_participants=3)]
            expected = pool.fold_shards(None, False, [(0, framed)])
            pool._servers[0].kill()
            healed = pool.fold_shards(None, False, [(0, framed)])
            assert healed == expected
            assert registry.counter_value("repro_service_respawns_total",
                                          server="server0") == 1
            assert registry.counter_value("repro_service_reconnects_total",
                                          server="server0") >= 1
            assert registry.counter_value("repro_service_retried_rounds_total",
                                          server="server0") == 1
        finally:
            pool.close()

    def test_unreachable_server_exhausts_retries(self):
        def refuse():
            raise ConnectionRefusedError("nobody home")

        client = ServiceClient(refuse, name="ghost", retry_attempts=3,
                               retry_delay_s=0.0)
        with pytest.raises(ServiceUnavailableError, match="3 attempt"):
            client.ping()
        assert client.stats["reconnects"] == 2  # attempts after the first

    def test_abandoned_tokens_evicted_at_flush(self, tiny_config):
        """A flaky client's orphaned round accumulators cannot grow a server
        without bound: flushes evict beyond the retention cap."""
        server = InProcessServer(name="evict")
        client = ServiceClient(lambda: FrameStream(server.connect()),
                               name="evict")
        try:
            model = MoETransformer(tiny_config)
            framed = [frame_update(u) for u in _updates(model, num_participants=1)]
            for index in range(_MAX_PENDING_TOKENS + 10):
                client.call(OP_ADD, {"token": f"orphan-{index}",
                                     "frames": framed[:1]})
            result, _ = client.fold_shard(None, False, 0, framed)
            assert result  # the folded round is unaffected by the eviction
            assert client.server_stats()["pending_tokens"] <= _MAX_PENDING_TOKENS
        finally:
            client.shutdown()
            server.close()


# ------------------------------------------------------------------ telemetry
class TestServiceTelemetry:
    def test_run_emits_service_metrics_and_fold_spans(self, vocab, tiny_config,
                                                      tmp_path):
        server, participants, test, config = build_federation(
            vocab, tiny_config, aggregation_executor="service",
            service_transport="socketpair", aggregation_workers=2,
            telemetry=True, telemetry_dir=str(tmp_path), **SHARDED_3TIER)
        tuner = ConstantMethod(server, participants, test, config=config)
        tuner.run(2)
        registry = tuner.telemetry.registry
        sent = sum(counter["value"] for counter in registry.snapshot()["counters"]
                   if counter["name"] == "repro_service_bytes_sent_total")
        assert sent > 0
        assert registry.counter_value("repro_service_folds_total",
                                      kind="shard") > 0
        assert registry.counter_value("repro_service_folds_total",
                                      kind="node") > 0
        assert registry.counter_value("repro_service_connections_total",
                                      server="server0") >= 1
        events = (tmp_path / "trace.jsonl").read_text()
        assert '"transport":"service"' in events
        assert "fold_shard" in events and "prefold_node" in events


# ------------------------------------------------------------------ machinery
class TestServiceMachinery:
    def test_make_aggregation_pool_service_branch(self):
        pool = make_aggregation_pool(RunConfig(
            aggregation_executor="service", aggregation_workers=3,
            service_transport="socketpair", service_retry_attempts=5,
            service_retry_delay_s=0.2, service_timeout_s=7.0,
            service_codec="wire", service_window=5))
        assert isinstance(pool, ServiceAggregationPool)
        assert pool.num_servers == 3
        assert pool.transport == "socketpair"
        assert pool.retry_attempts == 5
        assert pool.retry_delay_s == 0.2
        assert pool.timeout_s == 7.0
        assert pool.wire_frames is True
        assert pool.window == 5
        pool.close()  # never started: close is a no-op
        default = make_aggregation_pool(RunConfig(
            aggregation_executor="service", service_transport="socketpair"))
        assert default.wire_frames is False  # lossless fp64 stays the default
        default.close()

    def test_config_validates_service_knobs(self):
        with pytest.raises(ValueError, match="service transport"):
            RunConfig(service_transport="carrier-pigeon")
        with pytest.raises(ValueError, match="retry_attempts"):
            RunConfig(service_retry_attempts=0)
        with pytest.raises(ValueError, match="retry_delay"):
            RunConfig(service_retry_delay_s=-1.0)
        with pytest.raises(ValueError, match="timeout"):
            RunConfig(service_timeout_s=0.0)
        with pytest.raises(ValueError, match="service codec"):
            RunConfig(service_codec="fp8000")
        with pytest.raises(ValueError, match="service_window"):
            RunConfig(service_window=0)
        with pytest.raises(ValueError, match="aggregation executor"):
            RunConfig(aggregation_executor="carrier-pigeon")

    def test_pool_validates_construction(self):
        with pytest.raises(ValueError, match="transport"):
            ServiceAggregationPool(transport="smoke-signals")
        with pytest.raises(ValueError, match="addresses"):
            ServiceAggregationPool(transport="socketpair",
                                   addresses=[("localhost", 1)])
        with pytest.raises(ValueError, match="at least one"):
            ServiceAggregationPool(addresses=[])
        with pytest.raises(ValueError, match="disagrees"):
            ServiceAggregationPool(3, addresses=[("localhost", 1)])
        with pytest.raises(ValueError, match="positive"):
            ServiceAggregationPool(0)
        assert ServiceAggregationPool(
            addresses=[("h", 1), ("h", 2)]).num_servers == 2

    def test_pool_pickles_resource_less(self, tiny_config):
        pool = ServiceAggregationPool(1, transport="socketpair")
        try:
            model = MoETransformer(tiny_config)
            framed = [frame_update(u) for u in _updates(model, num_participants=2)]
            pool.fold_shards(None, False, [(0, framed)])
            clone = pickle.loads(pickle.dumps(pool))
            assert clone._clients == [] and clone._servers == []
            assert clone.num_servers == 1
            assert clone.transport == "socketpair"
        finally:
            pool.close()

    def test_close_idempotent_and_lazily_restarts(self, tiny_config):
        pool = ServiceAggregationPool(1, transport="socketpair")
        model = MoETransformer(tiny_config)
        framed = [frame_update(u) for u in _updates(model, num_participants=2)]
        first = pool.fold_shards(None, False, [(0, framed)])
        pool.close()
        pool.close()
        again = pool.fold_shards(None, False, [(0, framed)])  # fresh servers
        assert again == first
        pool.close()

    def test_results_keep_job_order_across_servers(self, tiny_config,
                                                   service_pool):
        model = MoETransformer(tiny_config)
        framed = [frame_update(u) for u in _updates(model, num_participants=2)]
        jobs = [(shard, framed) for shard in (5, 2, 9, 0)]
        results = service_pool.fold_shards(None, False, jobs)
        assert [shard for shard, _ in results] == [5, 2, 9, 0]
        folded = results[0][1]
        assert all(result == folded for _, result in results)
