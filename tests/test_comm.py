"""Tests for the wire-level communication stack (repro.comm).

Covers codec round-trips (exact for the cast codecs, bounded error for the
quantized/sparsified ones), frame edge cases (empty updates, zero-size
tensors, dtype preservation, corruption detection), streaming-vs-buffered
aggregation equivalence on ``tiny_moe``, an end-to-end wire round whose
measured payload bytes cross-check the analytic ``ExchangePlan`` estimate,
and the length-prefixed byte-stream transport (partial reads across frame
boundaries, mid-frame connection loss, close idempotence).
"""

import asyncio
import socket
import threading
import time

import numpy as np
import pytest

from repro.comm import (
    MAX_FRAME_BYTES,
    Channel,
    ChannelStats,
    FrameStream,
    PayloadCorruptedError,
    StreamingAggregator,
    TruncatedFrameError,
    available_codecs,
    decode_state_dict,
    decode_update,
    encode_state_dict,
    encode_update,
    frame_codec_name,
    get_codec,
    read_frame,
    write_frame,
)
from repro.comm.stream import LENGTH_PREFIX
from repro.data import make_gsm8k_like, partition_iid
from repro.federated import (
    ExpertUpdate,
    FederatedFineTuner,
    ParameterServer,
    ParticipantRoundResult,
    Participant,
    RunConfig,
)
from repro.federated.communication import ExchangePlan, bytes_per_param_for_bits
from repro.models import MoETransformer, llama_moe_mini
from repro.quantization import pack_int_codes, quantize_array, unpack_int_codes
from repro.runtime import ChannelFaultInjector
from repro.systems import RoundCostBreakdown


def random_state(rng, dtype="float64", rows=6, cols=9):
    return {
        "w_gate": rng.normal(size=(rows, cols)).astype(dtype),
        "w_up": rng.normal(size=(rows, cols)).astype(dtype),
        "w_down": rng.normal(size=(cols, rows)).astype(dtype),
    }


@pytest.fixture()
def state(rng):
    return random_state(np.random.default_rng(1))


@pytest.fixture()
def update(state):
    return ExpertUpdate(participant_id=3, layer=1, expert=2, state=state, weight=7.5)


class TestPacking:
    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_roundtrip(self, bits):
        rng = np.random.default_rng(bits)
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        codes = rng.integers(lo, hi + 1, size=37).astype(np.int32)
        packed = pack_int_codes(codes, bits)
        assert len(packed) == -(-37 * bits // 8)
        assert np.array_equal(unpack_int_codes(packed, bits, 37), codes)

    def test_rejects_unpackable_width(self):
        with pytest.raises(ValueError):
            pack_int_codes(np.zeros(4, dtype=np.int32), 3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            pack_int_codes(np.array([99], dtype=np.int32), 4)

    def test_unpack_short_payload(self):
        with pytest.raises(ValueError):
            unpack_int_codes(b"\x00", 8, 5)


class TestCodecRoundTrips:
    def test_registry_lists_expected_codecs(self):
        for name in ("fp64", "fp32", "fp16", "int8", "int4", "topk", "sparse-delta"):
            assert name in available_codecs()
        with pytest.raises(KeyError):
            get_codec("zstd")

    def test_fp64_exact(self, update):
        decoded = decode_update(encode_update(update, get_codec("fp64")))
        for name, value in update.state.items():
            assert np.array_equal(decoded.state[name], value)
            assert decoded.state[name].dtype == value.dtype
        assert (decoded.participant_id, decoded.layer, decoded.expert) == (3, 1, 2)
        assert decoded.weight == 7.5

    def test_fp32_exact_for_float32_source(self, rng):
        state = random_state(np.random.default_rng(2), dtype="float32")
        update = ExpertUpdate(0, 0, 0, state, 1.0)
        decoded = decode_update(encode_update(update, get_codec("fp32")))
        for name, value in state.items():
            assert decoded.state[name].dtype == np.float32
            assert np.array_equal(decoded.state[name], value)

    @pytest.mark.parametrize("name,atol", [("fp32", 1e-6), ("fp16", 2e-3)])
    def test_cast_codecs_bounded_error(self, update, name, atol):
        decoded = decode_update(encode_update(update, get_codec(name)))
        for key, value in update.state.items():
            assert decoded.state[key].dtype == value.dtype  # dtype preserved
            assert np.allclose(decoded.state[key], value, atol=atol)

    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_int_codecs_bounded_error(self, update, bits):
        decoded = decode_update(encode_update(update, get_codec(f"int{bits}")))
        for key, value in update.state.items():
            # error bounded by half a quantization step per row (float32
            # scales add a relative wobble on top of the float64 reference)
            steps = quantize_array(value, bits).scales
            bound = steps[:, None] * 0.5 * 1.001 + 1e-6
            assert np.all(np.abs(decoded.state[key] - value) <= bound)

    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_int_codecs_match_quantizer(self, update, bits):
        """Wire decode == quantize->dequantize up to float32-scale rounding."""
        decoded = decode_update(encode_update(update, get_codec(f"int{bits}")))
        for key, value in update.state.items():
            expected = quantize_array(value, bits).dequantize()
            assert np.allclose(decoded.state[key], expected, rtol=1e-6, atol=1e-6)

    def test_topk_full_density_near_exact(self, update, state):
        rng = np.random.default_rng(3)
        reference = {k: v + rng.normal(scale=0.05, size=v.shape) for k, v in state.items()}
        codec = get_codec("topk:1")
        decoded = decode_update(encode_update(update, codec, reference=reference),
                                reference=reference)
        for key, value in state.items():
            assert np.allclose(decoded.state[key], value, atol=1e-12)

    def test_topk_error_bounded_by_dropped_deltas(self, update, state):
        rng = np.random.default_rng(4)
        reference = {k: v + rng.normal(scale=0.05, size=v.shape) for k, v in state.items()}
        codec = get_codec("topk:0.25")
        decoded = decode_update(encode_update(update, codec, reference=reference),
                                reference=reference)
        for key, value in state.items():
            delta = value - reference[key]
            kept = max(1, int(np.ceil(0.25 * delta.size)))
            dropped = np.sort(np.abs(delta).ravel())[:-kept]
            residual = decoded.state[key] - value
            assert np.linalg.norm(residual) <= np.linalg.norm(dropped) + 1e-12
            # the error is exactly the dropped mass: kept entries match
            assert (np.abs(residual).ravel() > 1e-12).sum() <= delta.size - kept

    def test_topk_density_improves_error(self, update, state):
        rng = np.random.default_rng(5)
        reference = {k: v + rng.normal(scale=0.05, size=v.shape) for k, v in state.items()}
        errors = []
        for density in (0.1, 0.5, 1.0):
            codec = get_codec(f"topk:{density}")
            decoded = decode_update(encode_update(update, codec, reference=reference),
                                    reference=reference)
            errors.append(sum(np.linalg.norm(decoded.state[k] - state[k])
                              for k in state))
        assert errors[0] >= errors[1] >= errors[2]

    def test_topk_requires_reference(self, update):
        codec = get_codec("topk")
        with pytest.raises(ValueError):
            encode_update(update, codec)
        reference = {k: np.zeros_like(v) for k, v in update.state.items()}
        payload = encode_update(update, codec, reference=reference)
        with pytest.raises(ValueError):
            decode_update(payload)  # decoding also needs the reference

    def test_topk_reference_shape_mismatch(self, update):
        codec = get_codec("topk")
        reference = {k: np.zeros((2, 2)) for k in update.state}
        with pytest.raises(ValueError):
            encode_update(update, codec, reference=reference)

    def test_malformed_topk_tag(self):
        with pytest.raises(KeyError):
            get_codec("topk:lots")
        with pytest.raises(ValueError):
            get_codec("topk:0")

    def test_wire_bytes_per_param(self):
        assert get_codec("fp64").wire_bytes_per_param() == 8.0
        assert get_codec("fp32").wire_bytes_per_param() == 4.0
        assert get_codec("fp16").wire_bytes_per_param() == 2.0
        assert get_codec("int8").wire_bytes_per_param() == pytest.approx(1.0)
        assert get_codec("int8").wire_bytes_per_param(group_size=16) == pytest.approx(1.25)
        assert get_codec("int4").wire_bytes_per_param(group_size=32) == pytest.approx(0.625)
        assert get_codec("topk:0.5").wire_bytes_per_param() == pytest.approx(6.0)


class TestSparseCodecs:
    """The composed ``topk:<density>:int<bits>`` codec and ``sparse-delta``."""

    def test_composed_tag_grammar(self):
        codec = get_codec("topk:0.25:int4")
        assert codec.name == "topk:0.25:int4"
        assert codec.needs_reference and not codec.exact
        for malformed in ("topk:0.25:intx", "topk:0.25:in4", "topk:lots:int4"):
            with pytest.raises(KeyError):
                get_codec(malformed)
        with pytest.raises(ValueError):
            get_codec("topk:0.25:int3")  # unpackable bit width
        with pytest.raises(ValueError):
            get_codec("topk:0:int4")  # density outside (0, 1]

    def test_composed_full_density_error_bounded_by_quant_step(self, update, state):
        """At density 1 the only error left is the int8 half-step on deltas."""
        rng = np.random.default_rng(6)
        reference = {k: v + rng.normal(scale=0.05, size=v.shape)
                     for k, v in state.items()}
        codec = get_codec("topk:1:int8")
        decoded = decode_update(encode_update(update, codec, reference=reference),
                                reference=reference)
        for key, value in state.items():
            delta = value - reference[key]
            step = np.abs(delta).max() / (2 ** 7 - 1)
            assert np.abs(decoded.state[key] - value).max() <= step / 2 + 1e-9

    def test_composed_frames_smaller_than_raw_topk(self, update, state):
        """Packing the kept values shrinks the frame vs raw <f8 top-k."""
        rng = np.random.default_rng(7)
        reference = {k: v + rng.normal(scale=0.05, size=v.shape)
                     for k, v in state.items()}
        raw = len(encode_update(update, get_codec("topk:0.25"), reference=reference))
        packed = len(encode_update(update, get_codec("topk:0.25:int4"),
                                   reference=reference))
        assert packed < raw

    @pytest.mark.parametrize("name", ["topk:0.5", "topk:0.5:int4"])
    def test_all_zero_delta_ships_empty_sections(self, name):
        """A tensor equal to its reference encodes to empty sections."""
        codec = get_codec(name)
        array = np.arange(12.0).reshape(3, 4)
        sections = codec.encode_array(array, reference=array)
        assert all(section == b"" for section in sections)
        decoded = codec.decode_array(sections, array.shape, array.dtype,
                                     reference=array)
        assert np.array_equal(decoded, array)

    @pytest.mark.parametrize("name", ["topk:0.1", "topk:0.1:int8"])
    def test_one_element_tensor_density_rounding(self, name):
        """k = max(1, ceil(density*size)): a 1-element tensor still ships."""
        codec = get_codec(name)
        array, reference = np.array([2.5]), np.array([1.0])
        sections = codec.encode_array(array, reference=reference)
        assert len(sections[0]) > 0  # one index survived the rounding
        decoded = codec.decode_array(sections, array.shape, array.dtype,
                                     reference=reference)
        assert np.allclose(decoded, array, atol=1e-6)

    def test_adaptive_index_width(self):
        """Small tensors ship <u2 sparse indices, large tensors <u4."""
        small = np.zeros(100)
        small_changed = small.copy()
        small_changed[[3, 97]] = 1.0
        large = np.zeros(70_000)  # > 65535: u2 cannot address it
        large_changed = large.copy()
        large_changed[[5, 69_999]] = 1.0
        codec = get_codec("sparse-delta")
        small_sections = codec.encode_array(small_changed, reference=small)
        large_sections = codec.encode_array(large_changed, reference=large)
        assert len(small_sections[0]) == 2 * 2   # two u2 indices
        assert len(large_sections[0]) == 2 * 4   # two u4 indices
        for sections, ref, want in ((small_sections, small, small_changed),
                                    (large_sections, large, large_changed)):
            decoded = codec.decode_array(sections, want.shape, want.dtype,
                                         reference=ref)
            assert np.array_equal(decoded, want)

    @pytest.mark.parametrize("name", ["topk:0.5", "topk:0.5:int8", "sparse-delta"])
    def test_legacy_wide_index_frames_still_decode(self, name):
        """Frames with u4 indices on small tensors (pre-u2 writers) decode."""
        codec = get_codec(name)
        reference = np.zeros(50)
        array = reference.copy()
        array[[1, 7, 42]] = (1.0, -2.0, 3.0)
        sections = list(codec.encode_array(array, reference=reference))
        narrow = np.frombuffer(sections[0], dtype="<u2")
        sections[0] = narrow.astype("<u4").tobytes()  # re-widen the indices
        decoded = codec.decode_array(sections, array.shape, array.dtype,
                                     reference=reference)
        if codec.exact:
            assert np.array_equal(decoded, array)
        else:
            # int8 adds up to half a quantization step (~0.012 here)
            assert np.allclose(decoded, array, atol=0.05)

    def test_sparse_delta_exact_roundtrip(self, rng):
        for dtype in ("float64", "float32"):
            state = random_state(np.random.default_rng(8), dtype=dtype)
            # perturb a handful of entries per tensor; the rest stay shared
            reference = {}
            for key, value in state.items():
                ref = value.copy()
                ref.reshape(-1)[:3] += np.asarray(0.125, dtype=dtype)
                reference[key] = ref
            codec = get_codec("sparse-delta")
            assert codec.exact and codec.needs_reference
            update = ExpertUpdate(0, 0, 0, state, 1.0)
            decoded = decode_update(encode_update(update, codec, reference=reference),
                                    reference=reference)
            for key, value in state.items():
                assert decoded.state[key].dtype == value.dtype
                assert np.array_equal(decoded.state[key], value)

    def test_sparse_delta_assigns_rather_than_adds(self):
        """Decode must overwrite changed entries, not accumulate onto them."""
        reference = np.array([1.0, 2.0, 3.0])
        array = np.array([1.0, 5.0, 3.0])
        codec = get_codec("sparse-delta")
        sections = codec.encode_array(array, reference=reference)
        decoded = codec.decode_array(sections, array.shape, array.dtype,
                                     reference=reference)
        assert np.array_equal(decoded, array)
        # the value section carries the new value itself, not the delta
        assert np.frombuffer(sections[1], dtype="<f8")[0] == 5.0

    def test_sparse_delta_wire_bytes_per_param(self):
        assert get_codec("sparse-delta").wire_bytes_per_param() == pytest.approx(10.0)

    def test_composed_wire_bytes_per_param(self):
        codec = get_codec("topk:0.25:int4")
        assert codec.wire_bytes_per_param() == pytest.approx(0.25 * (2 + 0.5))
        assert codec.wire_bytes_per_param(group_size=1000) == pytest.approx(
            0.25 * 2.5 + 4 / 1000)
        with pytest.raises(ValueError):
            codec.wire_bytes_per_param(group_size=0)

    def test_corrupt_sparse_sections_detected(self):
        from repro.comm import PayloadCorruptedError

        reference = np.zeros(20)
        array = reference.copy()
        array[[2, 11]] = (1.0, -1.0)
        delta = get_codec("sparse-delta")
        good = delta.encode_array(array, reference=reference)
        with pytest.raises(PayloadCorruptedError):
            delta.decode_array(good + [b""], array.shape, array.dtype,
                               reference=reference)  # wrong section count
        with pytest.raises(PayloadCorruptedError):
            delta.decode_array([good[0], good[1][:-3]], array.shape, array.dtype,
                               reference=reference)  # torn value section
        bad_index = [np.array([2, 99], dtype="<u2").tobytes(), good[1]]
        with pytest.raises(PayloadCorruptedError):
            delta.decode_array(bad_index, array.shape, array.dtype,
                               reference=reference)  # index outside the tensor
        composed = get_codec("topk:0.5:int4")
        frame = composed.encode_array(array, reference=reference)
        with pytest.raises(PayloadCorruptedError):
            composed.decode_array([frame[0][:-1], frame[1], frame[2]],
                                  array.shape, array.dtype,
                                  reference=reference)  # index/code mismatch
        with pytest.raises(PayloadCorruptedError):
            composed.decode_array([frame[0], frame[1], frame[2] * 2],
                                  array.shape, array.dtype,
                                  reference=reference)  # two scales


class TestFraming:
    def test_empty_update_roundtrip(self):
        update = ExpertUpdate(0, 0, 0, {}, weight=1.0)
        decoded = decode_update(encode_update(update, get_codec("fp64")))
        assert decoded.state == {}
        assert decoded.weight == 1.0

    @pytest.mark.parametrize("name", ["fp64", "int4", "topk:1"])
    def test_zero_size_tensor_roundtrip(self, name):
        state = {"w": np.zeros((0, 4))}
        codec = get_codec(name)
        reference = state if codec.needs_reference else None
        decoded = decode_update(
            encode_update(ExpertUpdate(0, 0, 0, state, 1.0), codec, reference=reference),
            reference=reference)
        assert decoded.state["w"].shape == (0, 4)

    def test_scalar_and_1d_tensors(self):
        state = {"bias": np.arange(5, dtype=np.float64), "scale": np.float64(3.25)}
        decoded = decode_update(
            encode_update(ExpertUpdate(0, 0, 0, state, 1.0), get_codec("fp64")))
        assert np.array_equal(decoded.state["bias"], state["bias"])
        assert decoded.state["scale"] == pytest.approx(3.25)

    def test_mixed_dtypes_preserved(self):
        state = {"a": np.ones((2, 2), dtype=np.float32),
                 "b": np.ones((2, 2), dtype=np.float64)}
        decoded = decode_update(
            encode_update(ExpertUpdate(0, 0, 0, state, 1.0), get_codec("int8")))
        assert decoded.state["a"].dtype == np.float32
        assert decoded.state["b"].dtype == np.float64

    def test_corruption_detected_anywhere(self, update):
        payload = encode_update(update, get_codec("fp64"))
        for position in (0, 7, len(payload) // 2, len(payload) - 1):
            corrupted = bytearray(payload)
            corrupted[position] ^= 0xFF
            with pytest.raises(PayloadCorruptedError):
                decode_update(bytes(corrupted))

    def test_inconsistent_geometry_detected_despite_valid_checksum(self):
        """A frame that checksums but declares the wrong shape is corruption,
        not a crash: it must surface as PayloadCorruptedError."""
        import struct
        import zlib

        payload = encode_update(
            ExpertUpdate(0, 0, 0, {"w": np.zeros((2, 3))}, 1.0), get_codec("fp64"))
        body = bytearray(payload[:-4])
        # first shape dim lives right after magic|kind|codec|ids|ntensors|name|dtype|ndim
        offset = 4 + 1 + 1 + 4 + 20 + 2 + 2 + 1 + 1 + 3 + 1
        assert struct.unpack_from("<I", body, offset)[0] == 2  # sanity: dim0
        struct.pack_into("<I", body, offset, 5)  # lie about the shape
        reframed = bytes(body) + struct.pack("<I", zlib.crc32(bytes(body)))
        with pytest.raises(PayloadCorruptedError):
            decode_update(reframed)

    def test_truncated_frame_detected(self, update):
        payload = encode_update(update, get_codec("fp64"))
        with pytest.raises(PayloadCorruptedError):
            decode_update(payload[: len(payload) // 2])
        with pytest.raises(PayloadCorruptedError):
            decode_update(b"")

    def test_update_frame_refused_as_state_dict(self, update, state):
        with pytest.raises(PayloadCorruptedError):
            decode_state_dict(encode_update(update, get_codec("fp64")))
        with pytest.raises(PayloadCorruptedError):
            decode_update(encode_state_dict(state, get_codec("fp64")))

    def test_state_dict_roundtrip(self, tiny_model):
        codec = get_codec("fp64")
        state = tiny_model.state_dict()
        decoded = decode_state_dict(encode_state_dict(state, codec))
        assert set(decoded) == set(state)
        for name, value in state.items():
            assert np.array_equal(decoded[name], np.asarray(value))

    @pytest.mark.parametrize("name", ["fp64", "int4", "topk:0.25:int4"])
    def test_frame_codec_name_sniffs_header_only(self, update, state, name):
        """The declared codec reads straight off the fixed header — no decode,
        no reference needed — for update and state-dict frames alike."""
        codec = get_codec(name)
        reference = state if codec.needs_reference else None
        frame = encode_update(update, codec, reference=reference)
        assert frame_codec_name(frame) == name
        assert frame_codec_name(encode_state_dict(state, get_codec("fp64"))) == "fp64"
        # sniffing is cheap enough to need only the header bytes
        assert frame_codec_name(frame[:6 + len(name)]) == name

    def test_frame_codec_name_rejects_non_frames(self, update):
        with pytest.raises(ValueError, match="magic|truncated"):
            frame_codec_name(b"RWS1\x01junk")  # service envelope, wrong layer
        with pytest.raises(ValueError, match="magic|truncated"):
            frame_codec_name(b"")
        frame = encode_update(update, get_codec("fp64"))
        with pytest.raises(ValueError, match="truncated"):
            frame_codec_name(frame[:6])  # cut inside the codec tag


class TestStreamingAggregation:
    def make_updates(self, model, seed=0, participants=5):
        rng = np.random.default_rng(seed)
        updates = []
        for pid in range(participants):
            for layer, expert in model.iter_expert_ids():
                if rng.random() < 0.4:
                    continue  # partial participation
                state = {k: v + rng.normal(scale=0.1, size=v.shape)
                         for k, v in model.expert_state(layer, expert).items()}
                updates.append(ExpertUpdate(pid, layer, expert, state,
                                            weight=float(rng.integers(1, 40))))
        return updates

    def test_streaming_bit_identical_to_buffered(self, tiny_config):
        buffered = ParameterServer(MoETransformer(tiny_config))
        streaming = ParameterServer(MoETransformer(tiny_config))
        updates = self.make_updates(buffered.global_model, seed=11)

        contributions_b = buffered.aggregate(list(updates))
        contributions_s = streaming.aggregate(iter(updates), streaming=True)

        assert contributions_b == contributions_s
        state_b, state_s = buffered.global_state(), streaming.global_state()
        for name in state_b:
            assert np.array_equal(np.asarray(state_b[name]), np.asarray(state_s[name])), name

    def test_payload_streaming_bit_identical_to_buffered(self, tiny_config):
        """Full wire path (fp64 frames) also reproduces buffered FedAvg bits."""
        buffered = ParameterServer(MoETransformer(tiny_config))
        wire = ParameterServer(MoETransformer(tiny_config))
        updates = self.make_updates(buffered.global_model, seed=13)
        codec = get_codec("fp64")
        payloads = [encode_update(update, codec) for update in updates]

        contributions_b = buffered.aggregate(list(updates))
        contributions_w = wire.aggregate_payloads(payloads)

        assert contributions_b == contributions_w
        state_b, state_w = buffered.global_state(), wire.global_state()
        for name in state_b:
            assert np.array_equal(np.asarray(state_b[name]), np.asarray(state_w[name])), name

    def test_streaming_rejects_zero_total_weight(self):
        aggregator = StreamingAggregator()
        aggregator.add(ExpertUpdate(0, 0, 0, {"w": np.ones(3)}, weight=0.0))
        with pytest.raises(ValueError):
            aggregator.finalize()

    def test_streaming_rejects_negative_weight(self):
        aggregator = StreamingAggregator()
        with pytest.raises(ValueError):
            aggregator.add(ExpertUpdate(0, 0, 0, {"w": np.ones(3)}, weight=-1.0))

    def test_streaming_rejects_mismatched_tensor_names(self):
        aggregator = StreamingAggregator()
        aggregator.add(ExpertUpdate(0, 0, 0, {"w": np.ones(3)}, weight=1.0))
        with pytest.raises(ValueError):
            aggregator.add(ExpertUpdate(1, 0, 0, {"v": np.ones(3)}, weight=1.0))

    def test_streaming_consumes_a_generator_lazily(self, tiny_config):
        server = ParameterServer(MoETransformer(tiny_config))
        live = []

        def generate():
            for update in self.make_updates(server.global_model, seed=17):
                live.append(1)
                yield update
                live.pop()  # the server let go before asking for the next one

        server.aggregate(generate(), streaming=True)
        assert live == []


class TestChannel:
    def test_metering_and_airtime(self):
        channel = Channel(participant_id=1, latency_s=0.5)
        record = channel.send(b"x" * 1000)
        assert record.nbytes == 1000
        assert record.seconds == pytest.approx(0.5)  # no cost model: latency only
        assert channel.stats.bytes_up == 1000
        assert channel.stats.payloads == 1

    def test_bandwidth_from_cost_model(self, tiny_config):
        from repro.models.presets import ARCHITECTURE_DESCRIPTORS
        from repro.systems import CONSUMER_GPU, CostModel, MemoryModel

        cost = CostModel(CONSUMER_GPU, MemoryModel(ARCHITECTURE_DESCRIPTORS["llama-moe"]))
        channel = Channel(participant_id=0, cost_model=cost, latency_s=0.25)
        nbytes = 10 * 1024 ** 2
        record = channel.send(b"x" * nbytes, direction="down")
        expected = 0.25 + nbytes / CONSUMER_GPU.network_bytes_per_s
        assert record.seconds == pytest.approx(expected)
        assert channel.stats.bytes_down == nbytes

    def test_loss_and_corruption_seeded(self):
        faults = ChannelFaultInjector(loss_prob=0.3, corrupt_prob=0.3, seed=9)
        outcomes = [faults.outcome(seq, 4) for seq in range(64)]
        assert outcomes == [faults.outcome(seq, 4) for seq in range(64)]
        assert any(o.lost for o in outcomes)
        assert any(o.corrupted for o in outcomes)
        corrupted = faults.corrupt(b"hello world", 0, 4)
        assert corrupted != b"hello world" and len(corrupted) == 11

    def test_lost_payload_never_delivered(self):
        faults = ChannelFaultInjector(loss_prob=1.0, seed=0)
        channel = Channel(participant_id=2, faults=faults)
        record = channel.send(b"payload")
        assert record.lost and record.payload is None
        assert channel.stats.lost == 1

    def test_corrupted_payload_fails_decode(self, update):
        faults = ChannelFaultInjector(corrupt_prob=1.0, seed=0)
        channel = Channel(participant_id=2, faults=faults)
        record = channel.send(encode_update(update, get_codec("fp64")))
        assert record.corrupted
        with pytest.raises(PayloadCorruptedError):
            decode_update(record.payload)

    def test_stats_merge(self):
        a, b = ChannelStats(), ChannelStats(payloads=2, bytes_up=10.0, lost=1)
        a.merge(b)
        assert (a.payloads, a.bytes_up, a.lost) == (2, 10.0, 1)
        assert a.total_bytes == 10.0


class StubMethod(FederatedFineTuner):
    """Deterministic no-training method: perturbs every expert slightly."""

    name = "stub"

    def participant_round(self, participant, round_index):
        model = self.server.model_snapshot()
        rng = np.random.default_rng(participant.participant_id * 1000 + round_index)
        updates = []
        for layer, expert in model.iter_expert_ids():
            state = {k: v + rng.normal(scale=0.01, size=v.shape)
                     for k, v in model.expert_state(layer, expert).items()}
            updates.append(ExpertUpdate(participant.participant_id, layer, expert,
                                        state, weight=float(rng.integers(1, 20))))
        return ParticipantRoundResult(updates=updates,
                                      breakdown=RoundCostBreakdown(training=1.0),
                                      train_loss=1.0)


def make_stub(config, vocab, model_config, num_participants=3):
    dataset = make_gsm8k_like(vocab=vocab, num_samples=24, seed=3)
    shards = partition_iid(dataset, num_participants, seed=3)
    participants = [Participant(i, dataset.subset(shard), seed=i)
                    for i, shard in enumerate(shards)]
    server = ParameterServer(MoETransformer(model_config))
    return StubMethod(server, participants, dataset, config=config)


class TestWireRounds:
    def config(self, **overrides):
        defaults = dict(eval_max_samples=4, eval_batch_size=4, seed=0)
        defaults.update(overrides)
        return RunConfig(**defaults)

    def test_wire_fp64_streaming_matches_analytic_buffered(self, vocab, tiny_config):
        """Lossless wire + streaming aggregation reproduces the legacy path bit-for-bit."""
        legacy = make_stub(self.config(), vocab, tiny_config)
        wired = make_stub(self.config(transport="wire", codec="fp64",
                                      streaming_aggregation=True), vocab, tiny_config)
        result_a = legacy.run(num_rounds=2)
        result_b = wired.run(num_rounds=2)
        state_a = legacy.server.global_state()
        state_b = wired.server.global_state()
        for name in state_a:
            assert np.array_equal(np.asarray(state_a[name]), np.asarray(state_b[name])), name
        assert result_a.tracker.metric_values() == result_b.tracker.metric_values()
        assert result_a.rounds[0].wire_bytes == 0.0
        assert result_b.rounds[0].wire_bytes > 0.0
        assert result_b.tracker.total_comm_bytes() == pytest.approx(
            sum(r.wire_bytes for r in result_b.rounds))

    def test_wire_loss_drops_all_updates(self, vocab, tiny_config):
        tuner = make_stub(self.config(transport="wire", channel_loss_prob=1.0),
                          vocab, tiny_config)
        before = tuner.server.global_state()
        result = tuner.run(num_rounds=1)
        round_result = result.rounds[0]
        assert round_result.payloads_lost > 0
        assert round_result.wire_bytes > 0.0  # lost payloads still burned airtime
        after = tuner.server.global_state()
        for name in before:
            assert np.array_equal(np.asarray(before[name]), np.asarray(after[name]))

    def test_wire_corruption_detected_and_dropped(self, vocab, tiny_config):
        tuner = make_stub(self.config(transport="wire", channel_corrupt_prob=1.0),
                          vocab, tiny_config)
        before = tuner.server.global_state()
        result = tuner.run(num_rounds=1)
        assert result.rounds[0].payloads_corrupted > 0
        after = tuner.server.global_state()
        for name in before:
            assert np.array_equal(np.asarray(before[name]), np.asarray(after[name]))

    def test_wire_composed_codec_corruption_detected(self, vocab, tiny_config):
        """Corrupted composed sparse frames are dropped, never mis-applied."""
        tuner = make_stub(self.config(transport="wire", codec="topk:0.25:int4",
                                      streaming_aggregation=True,
                                      channel_corrupt_prob=1.0),
                          vocab, tiny_config)
        before = tuner.server.global_state()
        result = tuner.run(num_rounds=1)
        assert result.rounds[0].payloads_corrupted > 0
        after = tuner.server.global_state()
        for name in before:
            assert np.array_equal(np.asarray(before[name]), np.asarray(after[name]))

    def test_wire_composed_codec_round_converges(self, vocab, tiny_config):
        tuner = make_stub(self.config(transport="wire", codec="topk:0.25:int4",
                                      streaming_aggregation=True), vocab, tiny_config)
        before = tuner.server.global_state()
        tuner.run(num_rounds=1)
        after = tuner.server.global_state()
        assert any(not np.array_equal(np.asarray(before[n]), np.asarray(after[n]))
                   for n in before)

    def test_wire_topk_round_converges_toward_updates(self, vocab, tiny_config):
        tuner = make_stub(self.config(transport="wire", codec="topk:0.5",
                                      streaming_aggregation=True), vocab, tiny_config)
        before = tuner.server.global_state()
        tuner.run(num_rounds=1)
        after = tuner.server.global_state()
        assert any(not np.array_equal(np.asarray(before[n]), np.asarray(after[n]))
                   for n in before)

    def test_unknown_codec_rejected_early(self):
        with pytest.raises(ValueError):
            RunConfig(codec="zstd")
        with pytest.raises(ValueError):
            RunConfig(transport="carrier-pigeon")

    def test_explicit_codec_overrides_method_default(self, vocab, tiny_config):
        """FMQ picks int{bits} only when the user made no codec choice."""
        from repro import FMQFineTuner

        dataset = make_gsm8k_like(vocab=vocab, num_samples=12, seed=3)
        participants = [Participant(0, dataset, seed=0)]

        def make(cfg):
            return FMQFineTuner(ParameterServer(MoETransformer(tiny_config)),
                                participants, dataset, config=cfg, bits=4)

        assert make(RunConfig()).wire_codec_name() == "int4"
        assert make(RunConfig(codec="fp64")).wire_codec_name() == "fp64"
        assert make(RunConfig(codec="topk:0.5")).wire_codec_name() == "topk:0.5"


class TestMeasuredVsAnalytic:
    def test_int4_round_within_5pct_of_exchange_plan(self, vocab):
        """Acceptance: measured int4 payload bytes ~ ExchangePlan.for_bits."""
        config = llama_moe_mini(vocab_size=vocab.size)
        tuner = make_stub(RunConfig(transport="wire", codec="int4",
                                    streaming_aggregation=True,
                                    eval_max_samples=4, eval_batch_size=4),
                          vocab, config, num_participants=2)
        result = tuner.run(num_rounds=1)
        measured = result.rounds[0].wire_bytes
        assert measured > 0

        model = tuner.server.global_model
        expert_state = model.expert_state(0, 0)
        params = sum(np.asarray(v).size for v in expert_state.values())
        scales = sum(np.asarray(v).shape[0] if np.asarray(v).ndim > 1 else 1
                     for v in expert_state.values())
        num_updates = len(list(model.iter_expert_ids())) * len(tuner.participants)

        plan = ExchangePlan.for_bits(download_experts=0, upload_experts=num_updates,
                                     bits=4, group_size=params / scales)
        analytic = plan.payload_bytes(params_per_expert=params)
        assert measured == pytest.approx(analytic, rel=0.05)
        # the plain bits/8 estimate remains a (looser) lower bound
        naive = ExchangePlan.for_bits(0, num_updates, 4).payload_bytes(params)
        assert naive < measured

    def test_composed_topk_round_within_5pct_of_analytic(self, vocab):
        """Acceptance: measured topk:0.25:int4 bytes ~ the codec's analytics."""
        config = llama_moe_mini(vocab_size=vocab.size)
        tuner = make_stub(RunConfig(transport="wire", codec="topk:0.25:int4",
                                    streaming_aggregation=True,
                                    eval_max_samples=4, eval_batch_size=4),
                          vocab, config, num_participants=2)
        result = tuner.run(num_rounds=1)
        measured = result.rounds[0].wire_bytes
        assert measured > 0

        model = tuner.server.global_model
        codec = get_codec("topk:0.25:int4")
        expert_state = model.expert_state(0, 0)
        # one scale per tensor: group_size is the flattened tensor size
        per_update = sum(
            np.asarray(v).size * codec.wire_bytes_per_param(
                group_size=np.asarray(v).size)
            for v in expert_state.values())
        num_updates = len(list(model.iter_expert_ids())) * len(tuner.participants)
        assert measured == pytest.approx(per_update * num_updates, rel=0.05)
        # and the sparse frames are an order of magnitude under raw fp64
        fp64 = sum(np.asarray(v).size * 8.0 for v in expert_state.values())
        assert measured < 0.15 * fp64 * num_updates

    def test_group_aware_bytes_per_param(self):
        assert bytes_per_param_for_bits(4) == pytest.approx(0.5)
        assert bytes_per_param_for_bits(4, group_size=32) == pytest.approx(0.625)
        assert bytes_per_param_for_bits(8, group_size=64) == pytest.approx(1.0625)
        for bad_group in (-1, 0):
            with pytest.raises(ValueError):
                bytes_per_param_for_bits(4, group_size=bad_group)
            with pytest.raises(ValueError):
                get_codec("int4").wire_bytes_per_param(group_size=bad_group)

    def test_for_codec_matches_codec_estimate(self):
        plan = ExchangePlan.for_codec(2, 2, get_codec("fp16"))
        assert plan.bytes_per_param == 2.0
        assert plan.payload_bytes(1000) == pytest.approx(4 * 1000 * 2.0)


class TestStreamTransport:
    """Length-prefixed framing over real sockets (repro.comm.stream)."""

    @staticmethod
    def _pair():
        left, right = socket.socketpair()
        return FrameStream(left), FrameStream(right)

    def test_round_trip_including_empty_frame(self):
        sender, receiver = self._pair()
        for payload in (b"", b"x", b"frame" * 1000):
            sender.send_frame(payload)
            assert receiver.recv_frame() == payload
        assert sender.frames_sent == receiver.frames_received == 3
        # prefix bytes are counted on both ends
        assert sender.bytes_sent == receiver.bytes_received
        sender.close()
        receiver.close()

    def test_partial_reads_across_frame_boundaries(self):
        """Frames reassemble whatever byte boundaries the transport picks."""
        left, right = socket.socketpair()
        receiver = FrameStream(right)
        payloads = [b"alpha", b"", b"b" * 257, b"tail"]
        blob = b"".join(LENGTH_PREFIX.pack(len(p)) + p for p in payloads)
        # Dribble the whole conversation a few bytes at a time from a writer
        # thread, splitting inside prefixes and payloads alike.
        def dribble():
            for start in range(0, len(blob), 3):
                left.sendall(blob[start:start + 3])
                time.sleep(0.0005)
            left.close()

        writer = threading.Thread(target=dribble)
        writer.start()
        try:
            assert [receiver.recv_frame() for _ in payloads] == payloads
            assert receiver.recv_frame() is None  # clean EOF at a boundary
        finally:
            writer.join()
            receiver.close()

    def test_short_write_then_close_is_truncation(self):
        """A peer dying mid-frame surfaces as TruncatedFrameError — which is
        both corrupt payload (dropped, like a CRC failure) and a dead
        connection (caught by retry paths)."""
        left, right = socket.socketpair()
        receiver = FrameStream(right)
        left.sendall(LENGTH_PREFIX.pack(100) + b"only-part-of-it")
        left.close()
        with pytest.raises(TruncatedFrameError) as excinfo:
            receiver.recv_frame()
        assert isinstance(excinfo.value, PayloadCorruptedError)
        assert isinstance(excinfo.value, ConnectionError)
        receiver.close()

    def test_eof_inside_length_prefix_is_truncation(self):
        left, right = socket.socketpair()
        receiver = FrameStream(right)
        left.sendall(b"\x05\x00")  # two of the four prefix bytes
        left.close()
        with pytest.raises(TruncatedFrameError):
            receiver.recv_frame()
        receiver.close()

    def test_close_is_idempotent_and_thread_safe_against_reader(self):
        sender, receiver = self._pair()
        sender.close()
        sender.close()  # double-close: no-op
        assert sender.closed
        with pytest.raises(ConnectionError):
            sender.send_frame(b"late")
        # the peer sees the close as clean EOF, then double-closes too
        assert receiver.recv_frame() is None
        receiver.close()
        receiver.close()
        with pytest.raises(ConnectionError):
            receiver.recv_frame()

    def test_oversized_frames_rejected_both_directions(self):
        sender, receiver = self._pair()
        small = FrameStream(sender._sock, max_frame_bytes=16)
        with pytest.raises(PayloadCorruptedError):
            small.send_frame(b"z" * 17)
        # a lying prefix is refused before any allocation
        sender._sock.sendall(LENGTH_PREFIX.pack(MAX_FRAME_BYTES + 1))
        with pytest.raises(PayloadCorruptedError):
            receiver.recv_frame()
        sender.close()
        receiver.close()

    def test_send_frames_batches_into_one_write(self):
        """The batched write primitive: several frames in one ``sendall``,
        indistinguishable on the wire from per-frame sends."""
        sender, receiver = self._pair()
        payloads = [b"", b"one", b"two" * 300]
        written = sender.send_frames(payloads)
        assert written == sum(LENGTH_PREFIX.size + len(p) for p in payloads)
        assert sender.frames_sent == 3
        assert [receiver.recv_frame() for _ in payloads] == payloads
        assert receiver.bytes_received == sender.bytes_sent == written
        sender.close()
        receiver.close()

    def test_send_frames_oversize_rejected_before_any_byte(self):
        """One oversized payload anywhere in the batch aborts the whole batch
        pre-write, so the stream's framing stays intact."""
        left, right = socket.socketpair()
        sender = FrameStream(left, max_frame_bytes=16)
        receiver = FrameStream(right)
        with pytest.raises(PayloadCorruptedError):
            sender.send_frames([b"fine", b"z" * 17, b"also-fine"])
        assert sender.bytes_sent == 0 and sender.frames_sent == 0
        sender.send_frames([b"fine"])  # the stream is still usable
        assert receiver.recv_frame() == b"fine"
        sender.close()
        receiver.close()

    def test_peer_death_mid_batch_truncates_cleanly(self):
        """A sender dying inside a batched write leaves complete frames
        readable and the torn tail as TruncatedFrameError, like any other
        mid-frame death."""
        left, right = socket.socketpair()
        receiver = FrameStream(right)
        blob = (LENGTH_PREFIX.pack(5) + b"whole"
                + LENGTH_PREFIX.pack(64) + b"torn")
        left.sendall(blob)
        left.close()
        assert receiver.recv_frame() == b"whole"
        with pytest.raises(TruncatedFrameError):
            receiver.recv_frame()
        receiver.close()

    def test_asyncio_twins_interoperate_with_blocking_stream(self):
        """write_frame/read_frame speak the same bytes as FrameStream."""

        async def roundtrip():
            server_side, client_side = socket.socketpair()
            client = FrameStream(client_side)
            reader, writer = await asyncio.open_connection(sock=server_side)
            client.send_frame(b"ping")
            assert await read_frame(reader) == b"ping"
            await write_frame(writer, b"pong")
            assert client.recv_frame() == b"pong"
            # blocking side dies mid-frame -> asyncio side sees truncation
            client._sock.sendall(LENGTH_PREFIX.pack(64) + b"half")
            client.close()
            with pytest.raises(TruncatedFrameError):
                await read_frame(reader)
            writer.close()

        asyncio.run(roundtrip())
