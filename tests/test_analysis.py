"""Tests for activation profiling, output error and expert-significance analysis."""

import numpy as np
import pytest

from repro.analysis import (
    discard_expert_error,
    estimation_error,
    frequency_drift,
    frequency_significance_correlation,
    output_error,
    profile_activation,
    significance_report,
    top_significant_experts,
)
from repro.analysis.output_error import cosine_distance
from repro.models import MoETransformer
from repro.quantization import quantize_model


class TestProfileActivation:
    def test_requires_batches(self, tiny_model):
        with pytest.raises(ValueError):
            profile_activation(tiny_model, [])

    def test_frequencies_are_distributions(self, tiny_model, gsm_batches):
        profile = profile_activation(tiny_model, gsm_batches)
        assert profile.num_layers == tiny_model.num_layers
        for freq in profile.frequencies:
            assert freq.sum() == pytest.approx(1.0)
            assert np.all(freq >= 0)

    def test_sample_sets_reference_real_samples(self, tiny_model, gsm_batches):
        profile = profile_activation(tiny_model, gsm_batches)
        all_ids = {int(s) for batch in gsm_batches for s in batch.sample_ids}
        recorded = set()
        for layer_sets in profile.sample_sets:
            for sample_set in layer_sets:
                recorded |= sample_set
        assert recorded <= all_ids
        assert recorded  # some expert saw some sample

    def test_accumulation_does_not_leak_into_later_calls(self, tiny_model, gsm_batches):
        profile_a = profile_activation(tiny_model, gsm_batches)
        profile_b = profile_activation(tiny_model, gsm_batches)
        for fa, fb in zip(profile_a.frequencies, profile_b.frequencies):
            assert np.allclose(fa, fb)

    def test_layer_variance_and_matrix(self, tiny_model, gsm_batches):
        profile = profile_activation(tiny_model, gsm_batches)
        assert profile.layer_variance().shape == (tiny_model.num_layers,)
        matrix = profile.frequency_matrix()
        assert matrix.shape[0] == tiny_model.num_layers

    def test_total_tokens_counted(self, tiny_model, gsm_batches):
        profile = profile_activation(tiny_model, gsm_batches)
        expected = sum(batch.num_tokens for batch in gsm_batches)
        assert profile.total_tokens == expected


class TestEstimationError:
    def test_identical_profiles_have_zero_error(self, tiny_model, gsm_batches):
        a = profile_activation(tiny_model, gsm_batches)
        b = profile_activation(tiny_model, gsm_batches)
        assert estimation_error(a, b) == pytest.approx(0.0)

    def test_quantized_profile_has_moderate_error(self, tiny_model, gsm_batches):
        reference = profile_activation(tiny_model, gsm_batches)
        quantized = profile_activation(quantize_model(tiny_model, 4), gsm_batches)
        error = estimation_error(reference, quantized)
        assert 0.0 <= error < 100.0

    def test_mismatched_layer_counts_rejected(self, tiny_model, gsm_batches, tiny_config):
        reference = profile_activation(tiny_model, gsm_batches)
        other_model = MoETransformer(tiny_config.with_experts([4, 4]))
        # build a single-layer profile artificially
        short = profile_activation(other_model, gsm_batches)
        short.frequencies.pop()
        with pytest.raises(ValueError):
            estimation_error(reference, short)

    def test_frequency_drift_values(self, tiny_model, gsm_batches):
        a = profile_activation(tiny_model, gsm_batches)
        b = profile_activation(tiny_model, gsm_batches)
        drift = frequency_drift(a, b)
        assert drift.shape[0] == sum(len(f) for f in a.frequencies)
        assert np.allclose(drift, 0.0)


class TestOutputError:
    def test_identical_models_zero_error(self, tiny_model, gsm_batches, tiny_config):
        clone = MoETransformer(tiny_config)
        clone.load_state_dict(tiny_model.state_dict())
        assert output_error(tiny_model, clone, gsm_batches[:1]) == pytest.approx(0.0, abs=1e-9)

    def test_quantized_model_positive_error(self, tiny_model, gsm_batches):
        quantized = quantize_model(tiny_model, 2)
        assert output_error(tiny_model, quantized, gsm_batches[:1]) > 0.0

    def test_requires_batches(self, tiny_model):
        with pytest.raises(ValueError):
            output_error(tiny_model, tiny_model, [])

    def test_cosine_distance_bounds(self):
        a = np.random.default_rng(0).standard_normal((4, 8))
        assert np.allclose(cosine_distance(a, a), 0.0)
        assert np.allclose(cosine_distance(a, -a), 2.0)


class TestExpertSignificance:
    def test_discard_error_positive_and_weights_restored(self, tiny_model, gsm_batches):
        before = tiny_model.get_expert(0, 0).w_down.weight.data.copy()
        error = discard_expert_error(tiny_model, gsm_batches[:1], 0, 0)
        after = tiny_model.get_expert(0, 0).w_down.weight.data
        assert error >= 0.0
        assert np.allclose(before, after)

    def test_significance_report_covers_requested_experts(self, tiny_model, gsm_batches):
        report = significance_report(tiny_model, gsm_batches[:1], max_experts=4)
        assert len(report) == 4
        for item in report:
            assert 0.0 <= item.activation_frequency <= 1.0
            assert item.discard_error >= 0.0

    def test_top_significant_sorting(self, tiny_model, gsm_batches):
        report = significance_report(tiny_model, gsm_batches[:1], max_experts=4)
        top = top_significant_experts(report, top_k=2)
        assert len(top) == 2
        assert top[0].discard_error >= top[1].discard_error

    def test_correlation_bounds(self, tiny_model, gsm_batches):
        report = significance_report(tiny_model, gsm_batches[:1], max_experts=4)
        correlation = frequency_significance_correlation(report)
        assert -1.0 <= correlation <= 1.0

    def test_correlation_degenerate_cases(self):
        assert frequency_significance_correlation([]) == 0.0
