"""Tests for the Flux participant-side state (profiling cache, utilities, round pipeline)."""

import numpy as np
import pytest

from repro.core import FluxConfig, FluxClientState
from repro.core.assignment import RoleAssignment
from repro.data import make_gsm8k_like
from repro.federated import Participant, ParticipantResources
from repro.models.presets import ARCHITECTURE_DESCRIPTORS
from repro.systems import CONSUMER_GPU, CostModel, MemoryModel


@pytest.fixture()
def participant(vocab):
    dataset = make_gsm8k_like(vocab=vocab, num_samples=60, seed=17)
    return Participant(7, dataset, resources=ParticipantResources(max_experts=6,
                                                                  max_tuning_experts=3), seed=3)


@pytest.fixture()
def client_state(participant):
    return FluxClientState(participant, FluxConfig(seed=1))


@pytest.fixture()
def assignment():
    return RoleAssignment(
        participant_id=7,
        exploitation=[(0, 0), (1, 2)],
        exploration=[(0, 3)],
        candidates=[(0, 0), (1, 2), (0, 3)],
        epsilon=0.6,
    )


class TestFluxClientState:
    def test_profiling_initialises_utilities(self, client_state, participant, tiny_model,
                                              tiny_config):
        batches = participant.local_batches(8, max_batches=2, max_seq_len=tiny_config.max_seq_len)
        outcome = client_state.profile(tiny_model, batches, cost_model=None)
        assert outcome.profile.num_layers == tiny_model.num_layers
        utilities = client_state.report_utilities()
        assert len(utilities) == sum(tiny_model.experts_per_layer())
        assert max(utilities.values()) == pytest.approx(1.0)

    def test_run_round_produces_updates_for_exploitation_experts(self, client_state, tiny_model,
                                                                 assignment):
        output = client_state.run_round(
            global_model=tiny_model,
            assignment=assignment,
            learning_rate=5e-3,
            batch_size=8,
            max_batches=2,
            local_iterations=1,
            cost_model=None,
        )
        updated = {(u.layer, u.expert) for u in output.updates}
        assert updated == set(assignment.exploitation)
        assert output.train_loss > 0
        assert 0 < output.num_tuning_experts <= len(assignment.exploitation)

    def test_run_round_refreshes_exploration_utilities(self, client_state, tiny_model, assignment):
        client_state.run_round(
            global_model=tiny_model,
            assignment=assignment,
            learning_rate=5e-3,
            batch_size=8,
            max_batches=1,
            local_iterations=1,
            cost_model=None,
        )
        counts = client_state.utilities.update_counts
        for key in assignment.exploitation + assignment.exploration:
            assert counts.get(key, 0) >= 1

    def test_run_round_does_not_modify_global_model(self, client_state, tiny_model, assignment):
        before = tiny_model.state_dict()
        client_state.run_round(
            global_model=tiny_model,
            assignment=assignment,
            learning_rate=5e-2,
            batch_size=8,
            max_batches=1,
            local_iterations=1,
            cost_model=None,
        )
        after = tiny_model.state_dict()
        for key in before:
            assert np.allclose(before[key], after[key]), f"global parameter {key} changed locally"

    def test_run_round_cost_breakdown_with_cost_model(self, client_state, tiny_model, assignment):
        memory = MemoryModel(ARCHITECTURE_DESCRIPTORS["llama-moe"])
        cost_model = CostModel(CONSUMER_GPU, memory)
        output = client_state.run_round(
            global_model=tiny_model,
            assignment=assignment,
            learning_rate=5e-3,
            batch_size=8,
            max_batches=1,
            local_iterations=1,
            cost_model=cost_model,
        )
        breakdown = output.breakdown
        assert breakdown.training > 0
        assert breakdown.communication > 0
        assert breakdown.profiling > 0
        assert breakdown.merging >= 0

    def test_stale_profile_reused_on_second_round(self, client_state, participant, tiny_model,
                                                  tiny_config):
        batches = participant.local_batches(8, max_batches=1, max_seq_len=tiny_config.max_seq_len)
        first = client_state.profile(tiny_model, batches, cost_model=None)
        assert not first.stale
        second = client_state.profile(tiny_model, batches, cost_model=None)
        assert second.stale

    def test_compact_model_respects_expert_budget(self, client_state, tiny_model, assignment):
        output = client_state.run_round(
            global_model=tiny_model,
            assignment=assignment,
            learning_rate=5e-3,
            batch_size=8,
            max_batches=1,
            local_iterations=1,
            cost_model=None,
        )
        # tuning + preserved exploration + merged slots stays below the
        # original expert count (that is the point of the compact model)
        assert output.num_local_experts < sum(tiny_model.experts_per_layer())
