"""End-to-end integration tests: multi-round federated runs across methods/datasets."""

import pytest

from repro import (
    FMDFineTuner,
    FMESFineTuner,
    FMQFineTuner,
    FluxConfig,
    FluxFineTuner,
    MoETransformer,
    ParameterServer,
    Participant,
    ParticipantResources,
    RunConfig,
    make_dolly_like,
    make_gsm8k_like,
    make_mmlu_like,
    partition_dirichlet,
    tiny_moe,
)
from repro.data import Vocabulary
from repro.models.presets import ARCHITECTURE_DESCRIPTORS
from repro.systems import CONSUMER_GPU, CostModel, MemoryModel, heterogeneous_fleet


def build_federation(dataset, num_clients=3, max_experts=6, max_tuning=3, seed=0,
                     heterogeneous=False):
    train, test = dataset.split(seed=seed)
    shards = partition_dirichlet(train, num_clients, alpha=0.5, seed=seed)
    devices = (heterogeneous_fleet(num_clients, seed=seed)
               if heterogeneous else [CONSUMER_GPU] * num_clients)
    memory = MemoryModel(ARCHITECTURE_DESCRIPTORS["llama-moe"])
    participants, cost_models = [], {}
    for i, shard in enumerate(shards):
        participants.append(Participant(
            i, train.subset(shard), device=devices[i],
            resources=ParticipantResources(max_experts=max_experts, max_tuning_experts=max_tuning),
            seed=seed + i))
        cost_models[i] = CostModel(devices[i], memory)
    return participants, test, cost_models


@pytest.fixture(scope="module")
def shared_setup():
    vocab = Vocabulary(size=96, num_topics=4)
    config = tiny_moe(vocab_size=vocab.size)
    dataset = make_gsm8k_like(vocab=vocab, num_samples=120, seed=21)
    participants, test, cost_models = build_federation(dataset)
    run_config = RunConfig(batch_size=8, max_local_batches=2, learning_rate=5e-3,
                           eval_max_samples=24, seed=0)
    return config, participants, test, cost_models, run_config


class TestMultiRoundRuns:
    def test_flux_three_round_run_progresses(self, shared_setup):
        config, participants, test, cost_models, run_config = shared_setup
        server = ParameterServer(MoETransformer(config))
        tuner = FluxFineTuner(server, participants, test, cost_models=cost_models,
                              config=run_config, flux_config=FluxConfig(seed=0))
        result = tuner.run(num_rounds=3)
        assert len(result.rounds) == 3
        times = result.tracker.times()
        assert all(b > a for a, b in zip(times, times[1:]))
        assert result.tracker.history[-1].train_loss is not None

    def test_simulated_time_ordering_between_methods(self, shared_setup):
        """Per-round cost ordering: FMD (offloading) slowest, Flux cheaper."""
        config, participants, test, cost_models, run_config = shared_setup
        durations = {}
        for cls in (FluxFineTuner, FMDFineTuner, FMQFineTuner, FMESFineTuner):
            server = ParameterServer(MoETransformer(config))
            tuner = cls(server, participants, test, cost_models=cost_models, config=run_config)
            result = tuner.run(num_rounds=1)
            durations[tuner.name] = result.total_time
        assert durations["fmd"] > durations["flux"]
        assert durations["fmd"] > durations["fmes"]

    def test_flux_phase_breakdown_dominated_by_training(self, shared_setup):
        config, participants, test, cost_models, run_config = shared_setup
        server = ParameterServer(MoETransformer(config))
        tuner = FluxFineTuner(server, participants, test, cost_models=cost_models,
                              config=run_config)
        result = tuner.run(num_rounds=2)
        fractions = result.timeline.phase_fractions()
        overhead = fractions.get("merging", 0) + fractions.get("assignment", 0)
        assert fractions["training"] > overhead

    def test_heterogeneous_devices_round_time_set_by_slowest(self):
        vocab = Vocabulary(size=96, num_topics=4)
        config = tiny_moe(vocab_size=vocab.size)
        dataset = make_gsm8k_like(vocab=vocab, num_samples=90, seed=5)
        participants, test, cost_models = build_federation(dataset, heterogeneous=True, seed=3)
        run_config = RunConfig(batch_size=8, max_local_batches=1, eval_max_samples=12)
        server = ParameterServer(MoETransformer(config))
        tuner = FMDFineTuner(server, participants, test, cost_models=cost_models, config=run_config)
        round_result, _ = tuner.run_round(0)
        slowest = max(round_result.timeline.participant_times.values())
        assert round_result.round_duration >= slowest

    def test_other_datasets_work_end_to_end(self):
        vocab = Vocabulary(size=96, num_topics=4)
        config = tiny_moe(vocab_size=vocab.size)
        for factory in (make_dolly_like, make_mmlu_like):
            dataset = factory(vocab=vocab, num_samples=80, seed=9)
            participants, test, cost_models = build_federation(dataset, seed=9)
            run_config = RunConfig(batch_size=8, max_local_batches=1, eval_max_samples=12)
            server = ParameterServer(MoETransformer(config))
            tuner = FluxFineTuner(server, participants, test, cost_models=cost_models,
                                  config=run_config)
            result = tuner.run(num_rounds=1)
            assert 0.0 <= result.final_metric() <= 1.0

    def test_more_participants_reduce_per_round_data_per_client(self, shared_setup):
        """Scalability harness: participant subsampling works with larger federations."""
        vocab = Vocabulary(size=96, num_topics=4)
        config = tiny_moe(vocab_size=vocab.size)
        dataset = make_gsm8k_like(vocab=vocab, num_samples=150, seed=13)
        participants, test, cost_models = build_federation(dataset, num_clients=6, seed=13)
        run_config = RunConfig(batch_size=8, max_local_batches=1, eval_max_samples=12,
                               participants_per_round=3)
        server = ParameterServer(MoETransformer(config))
        tuner = FluxFineTuner(server, participants, test, cost_models=cost_models,
                              config=run_config)
        round_result, results = tuner.run_round(0)
        assert len(results) == 3

    @pytest.mark.slow
    def test_federated_training_improves_over_initial_model(self):
        """Several Flux rounds should beat the untrained model on the test split."""
        vocab = Vocabulary(size=96, num_topics=4)
        config = tiny_moe(vocab_size=vocab.size)
        dataset = make_dolly_like(vocab=vocab, num_samples=150, seed=31)
        participants, test, cost_models = build_federation(dataset, num_clients=3,
                                                           max_experts=8, max_tuning=4, seed=31)
        run_config = RunConfig(batch_size=8, max_local_batches=3, learning_rate=1e-2,
                               eval_max_samples=40, seed=1)
        server = ParameterServer(MoETransformer(config))
        from repro.metrics import evaluate_model
        initial = evaluate_model(server.global_model, test, max_samples=40, seed=1)
        tuner = FluxFineTuner(server, participants, test, cost_models=cost_models,
                              config=run_config)
        result = tuner.run(num_rounds=4)
        assert result.tracker.best_metric() > initial
