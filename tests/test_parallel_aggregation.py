"""Process-pool aggregation is bit-identical to serial — the whole matrix.

The fold plane (expert shards at the root, tier-0 subtree pre-folds in the
aggregation tree) can run behind :class:`repro.runtime.AggregationPool`
workers.  Workers receive lossless fp64 wire frames and mirror the serial
fold paths exactly, so every (strategy × shard count × tree depth)
combination must produce the same bits as the serial fold — including the
legacy buffered FedAvg's all-zero-weight uniform fallback, staleness
discounting, and kill+resume mid-run.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.federated import (
    AggregationTree,
    ExpertUpdate,
    ParameterServer,
    RunConfig,
    ShardedParameterServer,
)
from repro.federated.strategies import AggregationStrategy, picklable_strategy
from repro.models import MoETransformer
from repro.runtime import AggregationPool, latest_checkpoint, make_aggregation_pool

from test_runtime import ConstantMethod, build_federation

STRATEGIES = [None, "fedavg", "trimmed_mean", "median", "staleness_fedavg"]


@pytest.fixture(scope="module")
def pool():
    """One worker pool shared by the whole matrix (lazily spawned, closed once)."""
    shared = AggregationPool(max_workers=2)
    yield shared
    shared.close()


def _updates(model, num_participants=6, seed=7, stalenesses=False):
    rng = np.random.default_rng(seed)
    updates = []
    for pid in range(num_participants):
        for layer, expert in model.iter_expert_ids():
            state = {name: value + 0.01 * rng.normal(size=value.shape)
                     for name, value in model.expert_state(layer, expert).items()}
            updates.append(ExpertUpdate(
                pid, layer, expert, state, weight=float(pid % 3 + 1),
                staleness=(pid % 4) if stalenesses else 0))
    return updates


def _assert_models_equal(model_a, model_b):
    state_a, state_b = model_a.state_dict(), model_b.state_dict()
    for name in state_a:
        assert np.array_equal(state_a[name], state_b[name]), name


# -------------------------------------------------------------- shard matrix
class TestPooledShardsBitEqualSerial:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("num_shards", [2, 4, 8])
    def test_pooled_fold_matches_serial(self, tiny_config, pool, strategy,
                                        num_shards):
        serial_model = MoETransformer(tiny_config)
        pooled_model = MoETransformer(tiny_config)
        pooled_model.load_state_dict(serial_model.state_dict())
        updates = _updates(serial_model, stalenesses=(strategy == "staleness_fedavg"))

        serial = ShardedParameterServer(serial_model, num_shards=num_shards)
        serial_contrib = serial.aggregate(list(updates), strategy=strategy)

        pooled = ShardedParameterServer(pooled_model, num_shards=num_shards)
        pooled.fold_pool = pool
        pooled_contrib = pooled.aggregate(list(updates), strategy=strategy)

        assert serial_contrib == pooled_contrib
        assert serial.last_shard_contributions == pooled.last_shard_contributions
        _assert_models_equal(serial_model, pooled_model)

    @pytest.mark.parametrize("streaming", [False, True])
    def test_pooled_streaming_flag_mirrors_serial(self, tiny_config, pool, streaming):
        serial_model = MoETransformer(tiny_config)
        pooled_model = MoETransformer(tiny_config)
        pooled_model.load_state_dict(serial_model.state_dict())
        updates = _updates(serial_model)

        serial = ShardedParameterServer(serial_model, num_shards=3)
        serial.aggregate(iter(updates), streaming=streaming)
        pooled = ShardedParameterServer(pooled_model, num_shards=3)
        pooled.fold_pool = pool
        pooled.aggregate(iter(updates), streaming=streaming)
        _assert_models_equal(serial_model, pooled_model)

    def test_pooled_buffered_keeps_zero_weight_fallback(self, tiny_config, pool):
        """The legacy uniform mean over all-zero weights survives pooling."""
        serial_model = MoETransformer(tiny_config)
        pooled_model = MoETransformer(tiny_config)
        pooled_model.load_state_dict(serial_model.state_dict())
        def zero_weight(model):
            rng = np.random.default_rng(3)
            return [ExpertUpdate(pid, 0, 0,
                                 {name: value + rng.normal(size=value.shape)
                                  for name, value in model.expert_state(0, 0).items()},
                                 weight=0.0)
                    for pid in range(3)]

        ShardedParameterServer(serial_model, num_shards=2).aggregate(
            zero_weight(serial_model))
        pooled = ShardedParameterServer(pooled_model, num_shards=2)
        pooled.fold_pool = pool
        pooled.aggregate(zero_weight(pooled_model))
        _assert_models_equal(serial_model, pooled_model)

    def test_pooled_streaming_zero_weight_raises_like_serial(self, tiny_config, pool):
        model = MoETransformer(tiny_config)
        updates = [ExpertUpdate(pid, 0, 0, model.expert_state(0, 0), weight=0.0)
                   for pid in range(2)]
        pooled = ShardedParameterServer(model, num_shards=2)
        pooled.fold_pool = pool
        with pytest.raises(ValueError, match="non-positive total weight"):
            pooled.aggregate(list(updates), streaming=True)


# ---------------------------------------------------------------- tree matrix
class TestPooledTreeBitEqualSerial:
    @pytest.mark.parametrize("strategy", [None, "trimmed_mean", "median"])
    @pytest.mark.parametrize("tiers", [(2,), (3, 2), (2, 2, 2)])
    def test_pooled_prefold_matches_serial(self, tiny_config, pool, strategy, tiers):
        serial_model = MoETransformer(tiny_config)
        pooled_model = MoETransformer(tiny_config)
        pooled_model.load_state_dict(serial_model.state_dict())
        updates = _updates(serial_model, num_participants=8)

        serial_tree = AggregationTree(tiers, latency_s=0.05)
        serial_contrib, serial_stats = serial_tree.aggregate(
            ParameterServer(serial_model), iter(updates), strategy=strategy)
        pooled_tree = AggregationTree(tiers, latency_s=0.05)
        pooled_contrib, pooled_stats = pooled_tree.aggregate(
            ParameterServer(pooled_model), iter(updates), strategy=strategy,
            pool=pool)

        assert serial_contrib == pooled_contrib
        assert serial_tree.last_tier_counts == pooled_tree.last_tier_counts
        assert serial_stats.total_bytes == pooled_stats.total_bytes
        assert serial_stats.payloads == pooled_stats.payloads
        assert serial_stats.seconds == pooled_stats.seconds
        _assert_models_equal(serial_model, pooled_model)

    def test_pooled_tree_into_pooled_shards(self, tiny_config, pool):
        """Tree pre-fold and shard fold pool together, still bit-identical."""
        serial_model = MoETransformer(tiny_config)
        pooled_model = MoETransformer(tiny_config)
        pooled_model.load_state_dict(serial_model.state_dict())
        updates = _updates(serial_model, num_participants=8)

        AggregationTree((3, 2)).aggregate(
            ShardedParameterServer(serial_model, num_shards=4), iter(updates))
        pooled_server = ShardedParameterServer(pooled_model, num_shards=4)
        pooled_server.fold_pool = pool
        AggregationTree((3, 2)).aggregate(pooled_server, iter(updates), pool=pool)
        _assert_models_equal(serial_model, pooled_model)


# ------------------------------------------------------------------ run level
class TestPooledRuns:
    def _run(self, vocab, tiny_config, **config_kwargs):
        server, participants, test, config = build_federation(
            vocab, tiny_config, **config_kwargs)
        tuner = ConstantMethod(server, participants, test, config=config)
        result = tuner.run(2)
        return result, tuner

    @pytest.mark.parametrize("knobs", [
        {"num_shards": 4},
        {"edge_tiers": (3, 2), "num_shards": 2, "aggregation": "trimmed_mean"},
        {"edge_tiers": (2, 2), "transport": "wire", "streaming_aggregation": True},
        {"edge_tiers": (2, 2), "transport": "wire", "codec": "topk:0.25:int4",
         "streaming_aggregation": True},
    ], ids=["shards", "tree+trim", "tree+wire", "tree+sparse-wire"])
    def test_pooled_run_matches_serial_run(self, vocab, tiny_config, knobs):
        serial_result, serial_tuner = self._run(vocab, tiny_config, **knobs)
        pooled_result, pooled_tuner = self._run(
            vocab, tiny_config, aggregation_executor="process",
            aggregation_workers=2, **knobs)
        for a, b in zip(serial_result.rounds, pooled_result.rounds):
            assert a.train_loss == b.train_loss
            assert a.metric_value == b.metric_value
            assert a.simulated_time == b.simulated_time
            assert a.edge_bytes == b.edge_bytes
            assert a.tier_bytes == b.tier_bytes
        _assert_models_equal(serial_tuner.server.global_model,
                             pooled_tuner.server.global_model)

    def test_training_pool_and_fold_pool_compose(self, vocab, tiny_config):
        """executor='process' pickles the tuner; a live fold pool must survive."""
        knobs = dict(num_shards=2, edge_tiers=(2,), participants_per_round=3)
        serial_result, serial_tuner = self._run(vocab, tiny_config, **knobs)
        pooled_result, pooled_tuner = self._run(
            vocab, tiny_config, executor="process", executor_workers=2,
            aggregation_executor="process", aggregation_workers=2, **knobs)
        for a, b in zip(serial_result.rounds, pooled_result.rounds):
            assert a.train_loss == b.train_loss
            assert a.metric_value == b.metric_value
        _assert_models_equal(serial_tuner.server.global_model,
                             pooled_tuner.server.global_model)

    def test_pooled_resume_matches_uninterrupted(self, vocab, tiny_config, tmp_path):
        """Kill+resume under the pooled sharded-tree path stays bit-identical."""
        knobs = dict(participants_per_round=3, num_shards=2, edge_tiers=(2, 2),
                     aggregation="trimmed_mean", trim_ratio=0.2,
                     aggregation_executor="process", aggregation_workers=2)
        server, participants, test, config = build_federation(
            vocab, tiny_config, **knobs)
        expected_tuner = ConstantMethod(server, participants, test, config=config)
        expected = expected_tuner.run(4)

        durable = dict(knobs, checkpoint_every=2, checkpoint_dir=str(tmp_path))
        server, participants, test, config = build_federation(
            vocab, tiny_config, **durable)
        ConstantMethod(server, participants, test, config=config).run(2)
        snapshot = latest_checkpoint(str(tmp_path))
        assert snapshot is not None

        server, participants, test, config = build_federation(
            vocab, tiny_config, **durable)
        resumed_tuner = ConstantMethod(server, participants, test, config=config)
        resumed = resumed_tuner.run(4, resume_from=snapshot)

        assert resumed.tracker.as_series() == expected.tracker.as_series()
        for got, want in zip(resumed.rounds, expected.rounds):
            assert got.train_loss == want.train_loss
            assert got.metric_value == want.metric_value
            assert got.tier_bytes == want.tier_bytes
        _assert_models_equal(resumed_tuner.server.global_model,
                             expected_tuner.server.global_model)


# ------------------------------------------------------------------ machinery
class TestPoolMachinery:
    def test_make_aggregation_pool_from_config(self):
        assert make_aggregation_pool(RunConfig()) is None
        pool = make_aggregation_pool(
            RunConfig(aggregation_executor="process", aggregation_workers=3))
        assert isinstance(pool, AggregationPool)
        assert pool.max_workers == 3
        pool.close()
        with pytest.raises(ValueError):
            AggregationPool(max_workers=0)

    def test_pool_pickles_pool_less(self, tiny_config):
        """A tuner holding a live pool must still ship to training workers."""
        pool = AggregationPool(max_workers=1)
        try:
            model = MoETransformer(tiny_config)
            server = ShardedParameterServer(model, num_shards=2)
            server.fold_pool = pool
            server.aggregate(_updates(model, num_participants=2))  # spawn the pool
            clone = pickle.loads(pickle.dumps(server))
            assert clone.fold_pool._pool is None
            assert clone.fold_pool.max_workers == 1
        finally:
            pool.close()

    def test_close_is_idempotent_and_pool_recreates(self, tiny_config, pool):
        model = MoETransformer(tiny_config)
        server = ShardedParameterServer(model, num_shards=2)
        server.fold_pool = pool
        server.aggregate(_updates(model, num_participants=2))
        pool.close()
        pool.close()
        server.aggregate(_updates(model, num_participants=2))  # lazily respawns

    def test_unpicklable_strategy_fails_with_clear_error(self):
        class LambdaStrategy(AggregationStrategy):
            name = "lambda_strategy"

            def __init__(self):
                self.hook = lambda: None  # deliberately unpicklable

            def make_accumulator(self):
                raise NotImplementedError

        with pytest.raises(TypeError, match="cannot cross a process boundary"):
            picklable_strategy(LambdaStrategy())
        assert picklable_strategy(None) is None
