"""Edge-case and failure-injection tests across the stack."""

import numpy as np

from repro.core import (
    ExpertRoleAssigner,
    FluxFineTuner,
    QuantizedProfiler,
    build_compact_model,
    plan_compact_model,
)
from repro.analysis import profile_activation
from repro.data import SyntheticTaskGenerator, TaskType, Vocabulary, collate, make_gsm8k_like
from repro.federated import (
    ExpertUpdate,
    ParameterServer,
    Participant,
    ParticipantResources,
    RunConfig,
    apply_fedavg,
)
from repro.models import MoEModelConfig, MoETransformer
from repro.quantization import quantize_model


class TestTinyFederations:
    def test_single_participant_single_round(self, vocab, tiny_config):
        dataset = make_gsm8k_like(vocab=vocab, num_samples=20, seed=2)
        train, test = dataset.split()
        participant = Participant(0, train,
                                  resources=ParticipantResources(max_experts=4,
                                                                 max_tuning_experts=2))
        server = ParameterServer(MoETransformer(tiny_config))
        tuner = FluxFineTuner(server, [participant], test,
                              config=RunConfig(batch_size=4, max_local_batches=1,
                                               eval_max_samples=4))
        result = tuner.run(num_rounds=1)
        assert len(result.rounds) == 1

    def test_budget_larger_than_total_experts(self, vocab, tiny_config):
        """A participant whose budgets exceed the model's expert count still works."""
        dataset = make_gsm8k_like(vocab=vocab, num_samples=20, seed=3)
        train, test = dataset.split()
        total = sum(tiny_config.experts_per_layer())
        participant = Participant(0, train,
                                  resources=ParticipantResources(max_experts=total * 2,
                                                                 max_tuning_experts=total * 2))
        server = ParameterServer(MoETransformer(tiny_config))
        tuner = FluxFineTuner(server, [participant], test,
                              config=RunConfig(batch_size=4, max_local_batches=1,
                                               eval_max_samples=4))
        result = tuner.run(num_rounds=1)
        assert result.tracker.history

    def test_participant_with_very_few_samples(self, vocab, tiny_config):
        dataset = make_gsm8k_like(vocab=vocab, num_samples=12, seed=4)
        shard = dataset.subset([0, 1, 2])
        participant = Participant(0, shard,
                                  resources=ParticipantResources(max_experts=4,
                                                                 max_tuning_experts=2))
        batches = participant.local_batches(8, max_seq_len=tiny_config.max_seq_len)
        assert batches and batches[0].batch_size == 3


class TestDegenerateModels:
    def test_single_expert_per_layer_model(self, vocab):
        config = MoEModelConfig(vocab_size=vocab.size, d_model=16, n_layers=2, n_heads=2,
                                d_ff=16, num_experts=1, top_k=1, max_seq_len=32)
        model = MoETransformer(config)
        ids = np.random.default_rng(0).integers(0, vocab.size, size=(2, 8))
        loss = model.compute_loss(ids)
        assert np.isfinite(loss.item())
        freq = model.activation_frequencies()
        assert all(np.allclose(f, [1.0]) for f in freq)

    def test_top1_routing_model(self, vocab):
        config = MoEModelConfig(vocab_size=vocab.size, d_model=16, n_layers=2, n_heads=2,
                                d_ff=16, num_experts=4, top_k=1, max_seq_len=32)
        model = MoETransformer(config)
        ids = np.random.default_rng(1).integers(0, vocab.size, size=(2, 8))
        model(ids)
        record = model.routing_records()[0]
        assert record.token_counts.sum() == record.total_tokens  # exactly one expert per token

    def test_compact_plan_when_everything_is_tuning(self, tiny_model, gsm_batches):
        profile = profile_activation(tiny_model, gsm_batches[:1])
        tuning = {layer: list(range(count))
                  for layer, count in enumerate(tiny_model.experts_per_layer())}
        plan = plan_compact_model(tiny_model, tuning, profile,
                                  max_non_tuning_slots=tiny_model.num_layers)
        assert plan.num_merged_inputs() == 0
        compact, tuning_slots, frozen = build_compact_model(tiny_model, plan, profile)
        assert len(frozen) == 0
        assert sum(compact.local_experts_per_layer()) == sum(tiny_model.experts_per_layer())

    def test_quantize_model_with_extreme_bits(self, tiny_model, gsm_batches):
        lowest = quantize_model(tiny_model, 2)
        batch = gsm_batches[0]
        loss = lowest.compute_loss(batch.input_ids, labels=batch.labels,
                                   attention_mask=batch.attention_mask)
        assert np.isfinite(loss.item())


class TestRoleAssignerEdgeCases:
    def test_budget_of_one(self):
        experts = [(0, e) for e in range(4)]
        assigner = ExpertRoleAssigner(experts, seed=0)
        assignment = assigner.assign(0, {0: {(0, 2): 5.0}}, {0: 1})[0]
        assert len(assignment.candidates) == 1
        assert len(assignment.exploitation) == 1
        assert assignment.exploitation[0] == (0, 2)

    def test_budget_exceeding_expert_count(self):
        experts = [(0, e) for e in range(3)]
        assigner = ExpertRoleAssigner(experts, seed=0)
        assignment = assigner.assign(0, {}, {0: 10})[0]
        assert len(assignment.candidates) == 3

    def test_no_participants(self):
        experts = [(0, 0)]
        assigner = ExpertRoleAssigner(experts, seed=0)
        assert assigner.assign(0, {}, {}) == {}


class TestAggregationEdgeCases:
    def test_aggregate_empty_update_list(self, tiny_model):
        server = ParameterServer(tiny_model)
        contributions = server.aggregate([])
        assert contributions == {}
        assert server.round_index == 1

    def test_conflicting_updates_average(self, tiny_model):
        base = tiny_model.expert_state(0, 0)
        zeros = {k: np.zeros_like(v) for k, v in base.items()}
        ones = {k: np.ones_like(v) for k, v in base.items()}
        apply_fedavg(tiny_model, [
            ExpertUpdate(0, 0, 0, zeros, 1.0),
            ExpertUpdate(1, 0, 0, ones, 1.0),
        ])
        assert np.allclose(tiny_model.get_expert(0, 0).w_gate.weight.data, 0.5)


class TestDataEdgeCases:
    def test_minimum_viable_vocabulary(self):
        vocab = Vocabulary(size=32, num_topics=2)
        generator = SyntheticTaskGenerator(vocab, TaskType.MULTIPLE_CHOICE, seed=0)
        sample = generator.sample()
        assert sample.length > 4

    def test_collate_single_sample(self, vocab):
        generator = SyntheticTaskGenerator(vocab, TaskType.GENERATION, seed=1)
        batch = collate([generator.sample(sample_id=0)], pad_id=vocab.PAD)
        assert batch.batch_size == 1
        assert batch.attention_mask.all()

    def test_profiler_with_more_max_batches_than_available(self, tiny_model, gsm_batches):
        profiler = QuantizedProfiler(bits=4, max_batches=100)
        outcome = profiler.profile(tiny_model, gsm_batches[:1])
        assert outcome.num_tokens == gsm_batches[0].num_tokens
