"""Tests for the event-driven runtime: events, sampling, faults, schedulers, executor."""

import numpy as np
import pytest

from repro.data import make_gsm8k_like, partition_dirichlet
from repro.federated import (
    ExpertUpdate,
    FederatedFineTuner,
    ParameterServer,
    Participant,
    ParticipantResources,
    ParticipantRoundResult,
    RunConfig,
)
from repro.models import MoETransformer
from repro.runtime import (
    AsyncScheduler,
    AvailabilityTraceSampler,
    EventQueue,
    FaultInjector,
    ResourceAwareSampler,
    SemiSyncScheduler,
    SyncScheduler,
    UniformSampler,
    make_scheduler,
    scale_breakdown,
)
from repro.systems import RoundCostBreakdown, RoundTimeline, heterogeneous_fleet


# --------------------------------------------------------------------- events
class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(3.0, "c")
        queue.push(1.0, "a")
        queue.push(2.0, "b")
        assert [queue.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        queue = EventQueue()
        first = queue.push(1.0, "x", tag=1)
        second = queue.push(1.0, "x", tag=2)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_pop_until_inclusive(self):
        queue = EventQueue()
        for t in (0.5, 1.0, 1.5, 2.0):
            queue.push(t, "e")
        fired = queue.pop_until(1.5)
        assert [e.time for e in fired] == [0.5, 1.0, 1.5]
        assert len(queue) == 1

    def test_peek_and_empty_errors(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        with pytest.raises(IndexError):
            queue.pop()
        queue.push(1.0, "e")
        assert queue.peek().time == 1.0
        assert len(queue) == 1  # peek does not consume

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "e")


# ------------------------------------------------------------------- sampling
def _mini_participants(vocab, num=5, heterogeneous=False, seed=0):
    dataset = make_gsm8k_like(vocab=vocab, num_samples=10 * num, seed=seed)
    shards = partition_dirichlet(dataset, num, alpha=0.5, seed=seed)
    devices = (heterogeneous_fleet(num, seed=seed) if heterogeneous else [None] * num)
    participants = []
    for i, shard in enumerate(shards):
        kwargs = {"device": devices[i]} if heterogeneous else {}
        participants.append(Participant(i, dataset.subset(shard),
                                        resources=ParticipantResources(8, 4),
                                        seed=seed + i, **kwargs))
    return participants


class TestSamplers:
    def test_uniform_matches_legacy_draw(self, vocab):
        participants = _mini_participants(vocab)
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        sampled = UniformSampler().sample(participants, 2, 0, rng_a)
        picked = rng_b.choice(len(participants), size=2, replace=False)
        assert [p.participant_id for p in sampled] == [int(i) for i in picked]

    def test_uniform_none_returns_everyone(self, vocab):
        participants = _mini_participants(vocab)
        assert UniformSampler().sample(participants, None, 0, np.random.default_rng(0)) \
            == list(participants)

    def test_resource_aware_prefers_fast_devices(self, vocab):
        participants = _mini_participants(vocab, heterogeneous=True)
        flops = {p.participant_id: p.device.effective_flops for p in participants}
        sampler = ResourceAwareSampler(power=8.0)  # sharpen towards the fastest
        counts = {pid: 0 for pid in flops}
        rng = np.random.default_rng(0)
        for round_index in range(200):
            for p in sampler.sample(participants, 1, round_index, rng):
                counts[p.participant_id] += 1
        fastest = max(flops, key=flops.get)
        slowest = min(flops, key=flops.get)
        assert counts[fastest] > counts[slowest]

    def test_availability_trace_restricts_selection(self, vocab):
        participants = _mini_participants(vocab)
        sampler = AvailabilityTraceSampler({0: [1, 3], 2: []})
        rng = np.random.default_rng(0)
        assert {p.participant_id for p in sampler.sample(participants, None, 0, rng)} == {1, 3}
        # rounds missing from the trace mean everyone is online
        assert len(sampler.sample(participants, None, 1, rng)) == len(participants)
        assert sampler.sample(participants, 3, 2, rng) == []

    def test_availability_predicate(self, vocab):
        participants = _mini_participants(vocab)
        sampler = AvailabilityTraceSampler(lambda rnd, pid: pid % 2 == rnd % 2)
        rng = np.random.default_rng(0)
        assert {p.participant_id for p in sampler.sample(participants, None, 1, rng)} == {1, 3}


# --------------------------------------------------------------------- faults
class TestFaultInjector:
    def test_inactive_by_default(self):
        injector = FaultInjector()
        outcome = injector.outcome(0, 0)
        assert not outcome.dropped and outcome.slowdown == 1.0

    def test_outcomes_independent_of_call_order(self):
        injector = FaultInjector(dropout_prob=0.3, straggler_prob=0.3, seed=7)
        forward = [injector.outcome(2, pid) for pid in range(20)]
        backward = [injector.outcome(2, pid) for pid in reversed(range(20))]
        assert forward == list(reversed(backward))

    def test_seed_changes_outcomes(self):
        a = FaultInjector(dropout_prob=0.5, seed=1)
        b = FaultInjector(dropout_prob=0.5, seed=2)
        outcomes_a = [a.outcome(0, pid).dropped for pid in range(64)]
        outcomes_b = [b.outcome(0, pid).dropped for pid in range(64)]
        assert outcomes_a != outcomes_b

    def test_probabilities_roughly_respected(self):
        injector = FaultInjector(dropout_prob=0.25, straggler_prob=0.25, seed=0)
        outcomes = [injector.outcome(r, pid) for r in range(20) for pid in range(20)]
        drop_rate = np.mean([o.dropped for o in outcomes])
        assert 0.15 < drop_rate < 0.35

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(dropout_prob=1.5)
        with pytest.raises(ValueError):
            FaultInjector(straggler_slowdown=0.5)

    def test_scale_breakdown_scales_total_linearly(self):
        breakdown = RoundCostBreakdown(profiling=1.0, training=2.0, communication=3.0,
                                       quantization=0.5, assignment=0.25)
        scaled = scale_breakdown(breakdown, 3.0)
        for overlap in (False, True):
            assert scaled.total(overlap_profiling=overlap) == \
                pytest.approx(3.0 * breakdown.total(overlap_profiling=overlap))


# ----------------------------------------------------------------- federation
class ConstantMethod(FederatedFineTuner):
    """Minimal method with per-participant deterministic cost/loss."""

    name = "constant"

    def participant_round(self, participant, round_index):
        model = self.server.model_snapshot()
        batches = participant.local_batches(self.config.batch_size, max_batches=1,
                                            max_seq_len=model.config.max_seq_len)
        result = participant.local_finetune(model, batches,
                                            learning_rate=self.config.learning_rate)
        updates = [ExpertUpdate(participant.participant_id, 0, 0,
                                model.expert_state(0, 0), 1.0)]
        return ParticipantRoundResult(
            updates=updates,
            breakdown=RoundCostBreakdown(training=float(participant.participant_id + 1)),
            train_loss=result.mean_loss,
        )


def build_federation(vocab, tiny_config, num_clients=4, seed=0, **config_kwargs):
    dataset = make_gsm8k_like(vocab=vocab, num_samples=80, seed=11)
    train, test = dataset.split(seed=11)
    shards = partition_dirichlet(train, num_clients, alpha=0.5, seed=seed)
    participants = [
        Participant(i, train.subset(shard), resources=ParticipantResources(8, 4), seed=seed + i)
        for i, shard in enumerate(shards)
    ]
    server = ParameterServer(MoETransformer(tiny_config))
    config = RunConfig(batch_size=8, max_local_batches=1, eval_max_samples=12,
                       seed=seed, **config_kwargs)
    return server, participants, test, config


def legacy_reference_run(tuner, num_rounds):
    """The pre-runtime synchronous loop, replicated verbatim as an oracle."""
    history = []
    for round_index in range(num_rounds):
        selected = tuner.select_participants(round_index)
        tuner.before_round(round_index, selected)
        timeline = RoundTimeline(round_index=round_index)
        results, all_updates, losses = {}, [], []
        for participant in selected:
            result = tuner.participant_round(participant, round_index)
            results[participant.participant_id] = result
            timeline.record_participant(participant.participant_id, result.breakdown,
                                        overlap_profiling=result.overlap_profiling)
            all_updates.extend(result.updates)
            losses.append(result.train_loss)
        tuner.server.aggregate(all_updates)
        timeline.server_time = tuner._server_aggregation_time(len(all_updates))
        tuner.after_aggregation(round_index, results)
        duration = timeline.round_duration()
        simulated = tuner.clock.advance(duration)
        history.append({
            "train_loss": float(np.mean(losses)) if losses else 0.0,
            "metric": tuner.evaluate(),
            "simulated_time": simulated,
            "duration": duration,
            "participant_times": dict(timeline.participant_times),
        })
    return history


# ----------------------------------------------------------------- schedulers
class TestSyncSchedulerEquivalence:
    def test_matches_legacy_loop_exactly(self, vocab, tiny_config):
        """tuner.run() (default sync scheduler) == the historical round loop."""
        server_a, parts_a, test_a, config_a = build_federation(
            vocab, tiny_config, participants_per_round=3)
        server_b, parts_b, test_b, config_b = build_federation(
            vocab, tiny_config, participants_per_round=3)

        reference = legacy_reference_run(
            ConstantMethod(server_a, parts_a, test_a, config=config_a), 2)
        result = ConstantMethod(server_b, parts_b, test_b, config=config_b).run(num_rounds=2)

        assert len(result.rounds) == 2
        for round_result, expected in zip(result.rounds, reference):
            assert round_result.train_loss == expected["train_loss"]
            assert round_result.metric_value == expected["metric"]
            assert round_result.simulated_time == expected["simulated_time"]
            assert round_result.round_duration == expected["duration"]
            assert round_result.timeline.participant_times == expected["participant_times"]

    def test_run_round_legacy_api_still_works(self, vocab, tiny_config):
        server, participants, test, config = build_federation(vocab, tiny_config)
        tuner = ConstantMethod(server, participants, test, config=config)
        round_result, results = tuner.run_round(0)
        assert round_result.round_index == 0
        assert set(results) == {p.participant_id for p in participants}
        assert round_result.num_selected == len(participants)
        assert round_result.num_aggregated == len(participants)

    def test_sync_dropout_reduces_aggregated(self, vocab, tiny_config):
        server, participants, test, config = build_federation(
            vocab, tiny_config, dropout_prob=0.5, seed=3)
        tuner = ConstantMethod(server, participants, test, config=config)
        result = tuner.run(num_rounds=2)
        for round_result in result.rounds:
            assert round_result.num_aggregated + round_result.num_dropped \
                == round_result.num_selected
        assert sum(r.num_dropped for r in result.rounds) > 0

    def test_sync_straggler_slows_round(self, vocab, tiny_config):
        baseline_setup = build_federation(vocab, tiny_config, seed=1)
        slowed_setup = build_federation(vocab, tiny_config, seed=1,
                                        straggler_prob=1.0, straggler_slowdown=5.0)
        baseline = ConstantMethod(*baseline_setup[:3], config=baseline_setup[3]).run(1)
        slowed = ConstantMethod(*slowed_setup[:3], config=slowed_setup[3]).run(1)
        assert slowed.rounds[0].round_duration == \
            pytest.approx(5.0 * baseline.rounds[0].round_duration)
        assert slowed.rounds[0].num_stragglers == slowed.rounds[0].num_selected

    def test_dropped_clients_never_train(self, vocab, tiny_config):
        """Dropout is decided before local work: no wasted training runs."""
        class CountingMethod(ConstantMethod):
            calls = 0

            def participant_round(self, participant, round_index):
                CountingMethod.calls += 1
                return super().participant_round(participant, round_index)

        server, participants, test, config = build_federation(
            vocab, tiny_config, dropout_prob=1.0)
        CountingMethod.calls = 0
        result = CountingMethod(server, participants, test, config=config).run(1)
        assert CountingMethod.calls == 0
        assert result.rounds[0].num_dropped == len(participants)

    def test_subclass_select_participants_override_is_honored(self, vocab, tiny_config):
        """Legacy extension point: overriding selection still steers run()."""
        class FirstTwoOnly(ConstantMethod):
            def select_participants(self, round_index):
                return self.participants[:2]

        server, participants, test, config = build_federation(vocab, tiny_config)
        result = FirstTwoOnly(server, participants, test, config=config).run(1)
        assert result.rounds[0].num_selected == 2
        assert set(result.rounds[0].timeline.participant_times) == {0, 1}

    def test_fault_runs_are_seed_deterministic(self, vocab, tiny_config):
        outcomes = []
        for _ in range(2):
            server, participants, test, config = build_federation(
                vocab, tiny_config, dropout_prob=0.3, straggler_prob=0.3, seed=5)
            result = ConstantMethod(server, participants, test, config=config).run(2)
            outcomes.append([(r.num_dropped, r.num_stragglers, r.metric_value,
                              r.simulated_time) for r in result.rounds])
        assert outcomes[0] == outcomes[1]


class TestSemiSyncScheduler:
    def test_deadline_drops_stragglers(self, vocab, tiny_config):
        server, participants, test, config = build_federation(
            vocab, tiny_config, scheduler="semisync", deadline_quantile=0.5)
        tuner = ConstantMethod(server, participants, test, config=config)
        result = tuner.run(num_rounds=1)
        round_result = result.rounds[0]
        # ConstantMethod durations are 1..N seconds; the 0.5-quantile deadline
        # must exclude the slowest participants.
        assert 0 < round_result.num_aggregated < round_result.num_selected
        assert round_result.num_stragglers > 0
        assert round_result.round_duration < max(
            p.participant_id + 1 for p in participants) + round_result.timeline.server_time

    def test_fixed_deadline_respected(self, vocab, tiny_config):
        server, participants, test, config = build_federation(
            vocab, tiny_config, scheduler="semisync", deadline_seconds=2.5)
        result = ConstantMethod(server, participants, test, config=config).run(1)
        round_result = result.rounds[0]
        assert round_result.num_aggregated == 2  # durations 1s and 2s beat 2.5s
        assert round_result.round_duration == pytest.approx(2.5)

    def test_deadline_extends_to_first_finisher(self, vocab, tiny_config):
        server, participants, test, config = build_federation(
            vocab, tiny_config, scheduler="semisync", deadline_seconds=0.1)
        result = ConstantMethod(server, participants, test, config=config).run(1)
        assert result.rounds[0].num_aggregated == 1  # never an empty round

    def test_semisync_is_seed_deterministic(self, vocab, tiny_config):
        metrics = []
        for _ in range(2):
            server, participants, test, config = build_federation(
                vocab, tiny_config, scheduler="semisync", deadline_quantile=0.6,
                straggler_prob=0.25, seed=9)
            result = ConstantMethod(server, participants, test, config=config).run(2)
            metrics.append([(r.metric_value, r.simulated_time, r.num_aggregated)
                            for r in result.rounds])
        assert metrics[0] == metrics[1]


class TestAsyncScheduler:
    def test_staleness_discount_math(self):
        scheduler = AsyncScheduler(staleness_exponent=0.5)
        assert scheduler.staleness_discount(0) == pytest.approx(1.0)
        assert scheduler.staleness_discount(3) == pytest.approx(0.5)
        assert AsyncScheduler(staleness_exponent=0.0).staleness_discount(7) == 1.0
        assert AsyncScheduler(staleness_exponent=1.0).staleness_discount(1) == \
            pytest.approx(0.5)

    def test_async_run_produces_aggregations(self, vocab, tiny_config):
        server, participants, test, config = build_federation(
            vocab, tiny_config, scheduler="async", buffer_size=2, async_concurrency=3)
        tuner = ConstantMethod(server, participants, test, config=config)
        result = tuner.run(num_rounds=3)
        assert len(result.rounds) == 3
        assert server.round_index == 3
        times = [r.simulated_time for r in result.rounds]
        assert all(b >= a for a, b in zip(times, times[1:]))
        assert result.total_time == pytest.approx(times[-1])
        # Three concurrent clients feed a buffer of two: the leftover client
        # that started on version v lands in a later aggregation, so stale
        # contributions must appear.
        assert any(r.mean_staleness > 0 for r in result.rounds)

    def test_async_is_seed_deterministic(self, vocab, tiny_config):
        metrics = []
        for _ in range(2):
            server, participants, test, config = build_federation(
                vocab, tiny_config, scheduler="async", buffer_size=2,
                async_concurrency=3, straggler_prob=0.2, seed=4)
            result = ConstantMethod(server, participants, test, config=config).run(3)
            metrics.append([(r.metric_value, r.simulated_time, r.mean_staleness)
                            for r in result.rounds])
        assert metrics[0] == metrics[1]

    def test_async_empty_availability_does_not_crash(self, vocab, tiny_config):
        server, participants, test, config = build_federation(
            vocab, tiny_config, scheduler="async", buffer_size=2,
            sampler="availability",
            availability_trace={v: [] for v in range(10)})
        tuner = ConstantMethod(server, participants, test, config=config)
        result = tuner.run(num_rounds=2)
        assert result.rounds == []  # nobody ever online: no aggregations, no crash

    def test_async_records_dropouts(self, vocab, tiny_config):
        server, participants, test, config = build_federation(
            vocab, tiny_config, scheduler="async", buffer_size=2,
            async_concurrency=3, dropout_prob=0.4, seed=2)
        result = ConstantMethod(server, participants, test, config=config).run(3)
        for round_result in result.rounds:
            assert round_result.num_selected == \
                round_result.num_aggregated + round_result.num_dropped
        assert sum(r.num_dropped for r in result.rounds) > 0

    def test_async_recovers_slots_when_clients_come_online(self, vocab, tiny_config):
        """Slots unfillable at version 0 are reclaimed after aggregations."""
        server, participants, test, config = build_federation(
            vocab, tiny_config, scheduler="async", buffer_size=2,
            async_concurrency=3, sampler="availability",
            availability_trace={0: [0]})  # later versions: everyone online
        result = ConstantMethod(server, participants, test, config=config).run(2)
        assert len(result.rounds) == 2
        # Version 0 could only ever run client 0; after the first aggregation
        # the freed + recovered slots must bring other clients in.
        assert set(result.rounds[0].timeline.participant_times) == {0}
        assert len(result.rounds[1].timeline.participant_times) > 1

    def test_async_rejects_process_executor(self):
        with pytest.raises(ValueError, match="serial"):
            make_scheduler(RunConfig(scheduler="async", executor="process"))

    def test_async_staleness_is_bounded_by_version(self, vocab, tiny_config):
        server, participants, test, config = build_federation(
            vocab, tiny_config, scheduler="async", buffer_size=1, async_concurrency=4)
        result = ConstantMethod(server, participants, test, config=config).run(4)
        for round_result in result.rounds:
            assert 0 <= round_result.mean_staleness <= round_result.round_index


class TestSchedulerFactory:
    def test_make_scheduler_selects_policy(self):
        assert isinstance(make_scheduler(RunConfig()), SyncScheduler)
        assert isinstance(make_scheduler(RunConfig(scheduler="semisync")), SemiSyncScheduler)
        assert isinstance(make_scheduler(RunConfig(scheduler="async")), AsyncScheduler)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RunConfig(scheduler="nope")
        with pytest.raises(ValueError):
            RunConfig(dropout_prob=2.0)
        with pytest.raises(ValueError):
            RunConfig(executor="threads")

    def test_availability_sampler_requires_trace(self):
        with pytest.raises(ValueError):
            make_scheduler(RunConfig(sampler="availability"))
        scheduler = make_scheduler(RunConfig(sampler="availability",
                                             availability_trace={0: [0]}))
        assert isinstance(scheduler.sampler, AvailabilityTraceSampler)


# ----------------------------------------------------------- flux end-to-end
class TestFluxUnderRuntime:
    def _flux_tuner(self, vocab, tiny_config, **config_kwargs):
        from repro.core import FluxConfig, FluxFineTuner
        from repro.models.presets import ARCHITECTURE_DESCRIPTORS
        from repro.systems import CONSUMER_GPU, CostModel, MemoryModel

        server, participants, test, config = build_federation(
            vocab, tiny_config, num_clients=3, **config_kwargs)
        memory = MemoryModel(ARCHITECTURE_DESCRIPTORS["llama-moe"])
        cost_models = {p.participant_id: CostModel(CONSUMER_GPU, memory)
                       for p in participants}
        return FluxFineTuner(server, participants, test, cost_models=cost_models,
                             config=config, flux_config=FluxConfig(seed=0))

    def test_flux_sync_matches_legacy_loop(self, vocab, tiny_config):
        """Acceptance: same per-round eval metrics and simulated-time totals."""
        reference = legacy_reference_run(self._flux_tuner(vocab, tiny_config), 2)
        result = self._flux_tuner(vocab, tiny_config).run(num_rounds=2)
        for round_result, expected in zip(result.rounds, reference):
            assert round_result.metric_value == expected["metric"]
            assert round_result.train_loss == expected["train_loss"]
            assert round_result.simulated_time == expected["simulated_time"]
        assert result.total_time == pytest.approx(reference[-1]["simulated_time"])

    @pytest.mark.slow
    def test_flux_process_executor_matches_serial(self, vocab, tiny_config):
        serial = self._flux_tuner(vocab, tiny_config).run(num_rounds=2)
        parallel_tuner = self._flux_tuner(vocab, tiny_config, executor="process")
        parallel = parallel_tuner.run(num_rounds=2)
        for a, b in zip(serial.rounds, parallel.rounds):
            assert a.train_loss == b.train_loss
            assert a.metric_value == b.metric_value
            assert a.simulated_time == b.simulated_time
        # Flux per-client state (utility EMA) must have been replayed too.
        baseline_states = self._flux_tuner(vocab, tiny_config)
        baseline_states.run(num_rounds=2)
        for pid, state in parallel_tuner.states.items():
            expected = baseline_states.states[pid].utilities.as_dict()
            assert state.utilities.as_dict() == expected

    def test_flux_semisync_and_async_run(self, vocab, tiny_config):
        for kwargs in ({"scheduler": "semisync", "deadline_quantile": 0.7},
                       {"scheduler": "async", "buffer_size": 2, "async_concurrency": 2}):
            result = self._flux_tuner(vocab, tiny_config, **kwargs).run(num_rounds=2)
            assert len(result.rounds) == 2
            assert all(0.0 <= r.metric_value <= 1.0 for r in result.rounds)
            assert result.total_time > 0


# ------------------------------------------------------------------- executor
class TestExecutorEquivalence:
    def _run(self, vocab, tiny_config, executor):
        server, participants, test, config = build_federation(
            vocab, tiny_config, num_clients=3, executor=executor)
        if executor == "process":
            config.executor_workers = 2
        tuner = ConstantMethod(server, participants, test, config=config)
        result = tuner.run(num_rounds=2)
        state = {p.participant_id: p._round_seed for p in participants}
        return result, state

    def test_process_pool_matches_serial(self, vocab, tiny_config):
        serial_result, serial_state = self._run(vocab, tiny_config, "serial")
        process_result, process_state = self._run(vocab, tiny_config, "process")
        assert process_state == serial_state  # mutated client state replayed
        for a, b in zip(serial_result.rounds, process_result.rounds):
            assert a.train_loss == b.train_loss
            assert a.metric_value == b.metric_value
            assert a.simulated_time == b.simulated_time

    def test_run_round_legacy_api_with_process_executor(self, vocab, tiny_config):
        """run_round stores the scheduler on the tuner; the live pool must not
        end up inside the pickled payload shipped to the workers."""
        server, participants, test, config = build_federation(
            vocab, tiny_config, num_clients=3, executor="process", executor_workers=2)
        tuner = ConstantMethod(server, participants, test, config=config)
        first, results = tuner.run_round(0)
        second, _ = tuner.run_round(1)  # pool exists on the tuner by now
        assert len(results) == 3
        assert second.round_index == 1
        tuner.close()
        assert tuner._legacy_scheduler is None  # idempotent release
        tuner.close()
