"""repro.obs: span tracing, metrics registry, exporters, and run telemetry.

Unit layer: tracer nesting/round inheritance/worker ingest, counter/gauge/
histogram semantics, snapshot/restore durability, JSONL torn-line tolerance,
resume pruning, Chrome-trace and Prometheus rendering.

Integration layer: a pooled sharded 3-tier wire run with telemetry on must
produce a Chrome trace whose run/round/train/fold/transfer spans nest
correctly, per-tier byte counters that match ``RoundResult.tier_bytes``
exactly, and bit-identical run results to the same run with telemetry off;
a checkpointed run resumed mid-flight must append to the same trace without
duplicating round spans.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.federated import RunConfig
from repro.obs import (
    CHROME_TRACE_FILE,
    JSONL_FILE,
    PROMETHEUS_FILE,
    Histogram,
    MetricsRegistry,
    NULL_TELEMETRY,
    NULL_TRACER,
    RunTelemetry,
    Tracer,
    category_table,
    chrome_trace,
    format_table,
    last_metrics_snapshot,
    load_events,
    prometheus_text,
    prune_events_for_resume,
    round_table,
    span_record,
    tier_table,
)
from repro.runtime import latest_checkpoint

from test_runtime import ConstantMethod, build_federation

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# ------------------------------------------------------------------- tracer
class TestTracer:
    def test_nesting_parent_ids_and_round_inheritance(self):
        finished = []
        tracer = Tracer(sink=finished.append)
        with tracer.span("run", category="run") as run:
            with tracer.span("round", category="round", round=3) as rnd:
                with tracer.span("train", category="train", participant=1) as train:
                    pass
        assert [s.name for s in finished] == ["train", "round", "run"]
        assert train.parent_id == rnd.span_id
        assert rnd.parent_id == run.span_id
        assert run.parent_id is None
        assert train.round == 3  # inherited from the enclosing round span
        assert run.round is None

    def test_exception_unwinds_the_stack(self):
        finished = []
        tracer = Tracer(sink=finished.append)
        with pytest.raises(RuntimeError):
            with tracer.span("run"):
                with tracer.span("round", round=0):
                    raise RuntimeError("boom")
        assert {s.name for s in finished} == {"run", "round"}
        assert tracer.current_round() is None  # stack fully unwound

    def test_ingest_adopts_worker_record(self):
        finished = []
        tracer = Tracer(sink=finished.append)
        record = span_record("participant_round", "train", wall_start=123.0,
                             duration_s=0.5, sim_duration=7.0, participant=4)
        with tracer.span("round", category="round", round=2) as rnd:
            tracer.ingest(record)
        adopted = finished[0]
        assert adopted.name == "participant_round"
        assert adopted.parent_id == rnd.span_id
        assert adopted.round == 2          # inherited at ingest time
        assert adopted.wall_start == 123.0  # worker-measured clocks survive
        assert adopted.duration_s == 0.5
        assert adopted.sim_duration == 7.0
        assert adopted.attributes["participant"] == 4

    def test_span_set_attaches_sim_clock_and_attrs(self):
        tracer = Tracer()
        with tracer.span("uplink", category="transfer") as span:
            span.set(sim_duration=2.5, bytes=1024)
        assert span.sim_duration == 2.5
        assert span.attributes["bytes"] == 1024
        assert span.duration_s >= 0.0

    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        with NULL_TRACER.span("anything", category="fold") as span:
            span.set(sim_duration=1.0, bytes=5)  # discarded, no error
        assert span.attributes == {}
        NULL_TRACER.ingest({"name": "x"})
        assert NULL_TRACER.current_round() is None


# ------------------------------------------------------------------ metrics
class TestMetricsRegistry:
    def test_counter_series_by_labels(self):
        reg = MetricsRegistry()
        reg.counter("bytes_total", tier="tier0").inc(100)
        reg.counter("bytes_total", tier="tier1").inc(7)
        reg.counter("bytes_total", tier="tier0").inc(1)
        assert reg.counter_value("bytes_total", tier="tier0") == 101
        assert reg.counter_value("bytes_total", tier="tier1") == 7
        assert reg.counter_value("bytes_total", tier="tier9") == 0.0

    def test_counter_rejects_negative_increment(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_histogram_bucket_semantics(self):
        hist = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        # counts[i] holds observations <= bounds[i]; last bucket is +Inf
        assert hist.counts == [2, 1, 1]
        assert hist.cumulative_counts() == [2, 3, 4]
        assert hist.count == 4
        assert hist.sum == pytest.approx(106.5)
        assert hist.mean() == pytest.approx(106.5 / 4)

    def test_snapshot_restore_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("rounds_total").inc(3)
        reg.gauge("sim_seconds").set(42.5)
        reg.histogram("fold_seconds").observe(0.02)
        restored = MetricsRegistry()
        restored.restore(json.loads(json.dumps(reg.snapshot())))
        assert prometheus_text(restored) == prometheus_text(reg)
        restored.restore(None)
        assert restored.snapshot() == MetricsRegistry().snapshot()


# ---------------------------------------------------------------- exporters
class TestExporters:
    def test_load_events_skips_torn_tail(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type":"span","round":0}\n{"type":"sp')  # killed mid-write
        events = load_events(str(path))
        assert events == [{"type": "span", "round": 0}]

    def test_prune_drops_resumed_rounds_keeps_round_less(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = [{"type": "span", "cat": "run", "round": None},
                 {"type": "span", "cat": "round", "round": 0},
                 {"type": "metrics", "round": 1, "registry": {}},
                 {"type": "span", "cat": "round", "round": 2}]
        path.write_text("".join(json.dumps(e) + "\n" for e in lines))
        dropped = prune_events_for_resume(str(path), start_round=1)
        assert dropped == 2
        rounds = [e.get("round") for e in load_events(str(path))]
        assert rounds == [None, 0]

    def test_last_metrics_snapshot_honours_before_round(self):
        events = [{"type": "metrics", "round": 0, "registry": {"mark": 0}},
                  {"type": "metrics", "round": 2, "registry": {"mark": 2}}]
        assert last_metrics_snapshot(events) == {"mark": 2}
        assert last_metrics_snapshot(events, before_round=2) == {"mark": 0}
        assert last_metrics_snapshot(events, before_round=0) is None

    def test_chrome_trace_layout(self):
        events = [
            {"type": "span", "name": "round", "cat": "round", "span_id": 1,
             "parent_id": None, "round": 0, "wall_start": 100.0,
             "duration_s": 2.0, "attrs": {}},
            {"type": "span", "name": "train", "cat": "train", "span_id": 2,
             "parent_id": 1, "round": 0, "wall_start": 100.5,
             "duration_s": 1.0, "sim_duration": 30.0, "attrs": {"participant": 3}},
        ]
        trace = chrome_trace(events)
        meta, rnd, train = trace["traceEvents"]
        assert meta["ph"] == "M"
        assert rnd["ts"] == 0.0 and rnd["dur"] == pytest.approx(2e6)
        assert train["ts"] == pytest.approx(0.5e6)
        assert train["tid"] == 1 + 3  # per-participant row
        assert train["args"]["parent_id"] == 1
        assert train["args"]["sim_duration_s"] == 30.0

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_rounds_total").inc(2)
        reg.histogram("repro_fold_seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = prometheus_text(reg)
        assert "# TYPE repro_rounds_total counter" in text
        assert "repro_rounds_total 2" in text
        assert 'repro_fold_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_fold_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_fold_seconds_count 1" in text


# ------------------------------------------------------------- run telemetry
#: worker/coordinator wall-clock skew allowance for interval-nesting checks
NEST_EPS_US = 5_000.0


def _telemetry_federation(vocab, tiny_config, trace_dir, **extra):
    knobs = dict(num_shards=2, edge_tiers=(3, 2), transport="wire",
                 aggregation_executor="process", aggregation_workers=2,
                 participants_per_round=4,
                 telemetry=True, telemetry_dir=str(trace_dir))
    knobs.update(extra)
    return build_federation(vocab, tiny_config, num_clients=6, **knobs)


@pytest.fixture(scope="module")
def telemetry_run(vocab, tiny_config, tmp_path_factory):
    """One pooled sharded 3-tier wire run with telemetry on (2 rounds)."""
    trace_dir = str(tmp_path_factory.mktemp("obs-trace"))
    server, participants, test, config = _telemetry_federation(
        vocab, tiny_config, trace_dir)
    tuner = ConstantMethod(server, participants, test, config=config)
    result = tuner.run(2)
    return result, tuner, trace_dir


class TestRunTelemetry:
    def test_config_requires_directory(self):
        with pytest.raises(ValueError):
            RunConfig(telemetry=True)

    def test_off_by_default_null_everything(self, vocab, tiny_config):
        server, participants, test, config = build_federation(vocab, tiny_config)
        tuner = ConstantMethod(server, participants, test, config=config)
        assert tuner.telemetry is NULL_TELEMETRY
        assert tuner.server.tracer is NULL_TRACER

    def test_exports_written(self, telemetry_run):
        _, _, trace_dir = telemetry_run
        for name in (JSONL_FILE, CHROME_TRACE_FILE, PROMETHEUS_FILE):
            assert os.path.getsize(os.path.join(trace_dir, name)) > 0

    def test_chrome_trace_spans_nest_correctly(self, telemetry_run):
        """Every child span's interval lies inside its parent's."""
        _, _, trace_dir = telemetry_run
        with open(os.path.join(trace_dir, CHROME_TRACE_FILE)) as handle:
            trace = json.load(handle)
        spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        by_id = {e["args"]["span_id"]: e for e in spans}
        assert {e["cat"] for e in spans} >= {"run", "round", "train",
                                             "fold", "transfer"}
        checked = 0
        for event in spans:
            parent_id = event["args"].get("parent_id")
            if parent_id is None:
                continue
            parent = by_id[parent_id]
            assert event["ts"] >= parent["ts"] - NEST_EPS_US, event
            assert (event["ts"] + event["dur"]
                    <= parent["ts"] + parent["dur"] + NEST_EPS_US), event
            checked += 1
        assert checked > 10  # the trace is genuinely nested, not flat

    def test_round_and_worker_span_census(self, telemetry_run):
        result, _, trace_dir = telemetry_run
        events = load_events(os.path.join(trace_dir, JSONL_FILE))
        spans = [e for e in events if e.get("type") == "span"]
        rounds = sorted(e["round"] for e in spans if e["cat"] == "round")
        assert rounds == [0, 1]
        train = [e for e in spans if e["cat"] == "train"]
        assert len(train) == sum(r.num_aggregated for r in result.rounds)
        assert all(e["round"] in (0, 1) for e in train)
        # pooled tier-0 pre-folds and shard folds come back from workers
        assert any(e["name"] == "prefold_node" for e in spans)
        assert any(e["name"] == "fold_shard" for e in spans)
        # the metered uplink + tier hops produce transfer spans with airtime
        transfer = [e for e in spans if e["cat"] == "transfer"]
        assert transfer and all(e.get("sim_duration") is not None
                                for e in transfer)

    def test_uplink_spans_carry_wire_density(self, telemetry_run, vocab,
                                             tiny_config, tmp_path):
        """Uplink spans record payload bytes as a fraction of raw fp64."""
        def uplink_densities(trace_dir):
            events = load_events(os.path.join(trace_dir, JSONL_FILE))
            return [e["attrs"]["wire_density"] for e in events
                    if e.get("type") == "span" and e.get("name") == "uplink"
                    and "wire_density" in e.get("attrs", {})]

        _, _, trace_dir = telemetry_run
        dense = uplink_densities(trace_dir)
        # fp64 frames cost a hair more than the raw tensors (frame headers)
        assert dense and all(density >= 1.0 for density in dense)

        sparse_dir = str(tmp_path / "sparse-trace")
        server, participants, test, config = _telemetry_federation(
            vocab, tiny_config, sparse_dir, codec="topk:0.25:int4",
            streaming_aggregation=True)
        ConstantMethod(server, participants, test, config=config).run(1)
        sparse = uplink_densities(sparse_dir)
        assert sparse and all(density < 0.2 for density in sparse)

    def test_tier_byte_counters_match_round_results_exactly(self, telemetry_run):
        result, _, trace_dir = telemetry_run
        events = load_events(os.path.join(trace_dir, JSONL_FILE))
        reg = MetricsRegistry()
        reg.restore(last_metrics_snapshot(events))
        num_tiers = len(result.rounds[0].tier_bytes)
        assert num_tiers == 2
        for tier in range(num_tiers):
            expected_bytes = sum(r.tier_bytes[tier] for r in result.rounds)
            expected_payloads = sum(r.tier_payloads[tier] for r in result.rounds)
            assert reg.counter_value("repro_tier_bytes_total",
                                     tier=f"tier{tier}") == expected_bytes
            assert reg.counter_value("repro_tier_payloads_total",
                                     tier=f"tier{tier}") == expected_payloads
        assert reg.counter_value("repro_rounds_total") == len(result.rounds)
        assert reg.counter_value("repro_edge_bytes_total") == sum(
            r.edge_bytes for r in result.rounds)

    def test_results_identical_with_telemetry_off(self, vocab, tiny_config,
                                                  telemetry_run, tmp_path):
        traced_result, traced_tuner, _ = telemetry_run
        server, participants, test, config = _telemetry_federation(
            vocab, tiny_config, tmp_path, telemetry=False, telemetry_dir=None)
        plain_tuner = ConstantMethod(server, participants, test, config=config)
        plain = plain_tuner.run(2)
        assert plain.tracker.as_series() == traced_result.tracker.as_series()
        for a, b in zip(plain.rounds, traced_result.rounds):
            assert a.tier_bytes == b.tier_bytes
            assert a.simulated_time == b.simulated_time

    def test_process_executor_train_spans_ingested(self, vocab, tiny_config,
                                                   tmp_path):
        """Worker-side train spans travel back through the training pool."""
        server, participants, test, config = build_federation(
            vocab, tiny_config, participants_per_round=3,
            executor="process", executor_workers=2,
            telemetry=True, telemetry_dir=str(tmp_path))
        tuner = ConstantMethod(server, participants, test, config=config)
        tuner.run(1)
        events = load_events(os.path.join(str(tmp_path), JSONL_FILE))
        train = [e for e in events
                 if e.get("type") == "span" and e["cat"] == "train"]
        assert len(train) == 3
        coordinator = os.getpid()
        assert all(e["attrs"]["worker_pid"] != coordinator for e in train)
        assert all(e.get("sim_duration") is not None for e in train)

    def test_resume_appends_without_duplicate_round_spans(self, vocab,
                                                          tiny_config, tmp_path):
        trace_dir = tmp_path / "trace"
        knobs = dict(checkpoint_every=2, checkpoint_dir=str(tmp_path / "ckpt"))
        server, participants, test, config = _telemetry_federation(
            vocab, tiny_config, trace_dir, **knobs)
        ConstantMethod(server, participants, test, config=config).run(3)

        snapshot = latest_checkpoint(str(tmp_path / "ckpt"))
        assert snapshot is not None and snapshot.endswith("round_00002")
        server, participants, test, config = _telemetry_federation(
            vocab, tiny_config, trace_dir, **knobs)
        resumed_tuner = ConstantMethod(server, participants, test, config=config)
        resumed = resumed_tuner.run(4, resume_from=snapshot)
        assert len(resumed.rounds) == 4

        events = load_events(os.path.join(str(trace_dir), JSONL_FILE))
        round_spans = sorted(e["round"] for e in events
                             if e.get("type") == "span" and e["cat"] == "round")
        # round 2 was traced by the interrupted run AND re-executed by the
        # resume; the prune must keep exactly one copy of it
        assert round_spans == [0, 1, 2, 3]
        metric_rounds = sorted(e["round"] for e in events
                               if e.get("type") == "metrics")
        assert metric_rounds == [0, 1, 2, 3]

    def test_telemetry_survives_pickling_without_handle(self, tmp_path):
        import pickle

        telemetry = RunTelemetry(str(tmp_path))
        telemetry.begin()
        telemetry.registry.counter("repro_rounds_total").inc()
        clone = pickle.loads(pickle.dumps(telemetry))
        assert clone._handle is None
        assert not clone._writable()  # same pid but no handle
        assert clone.registry.counter_value("repro_rounds_total") == 1
        telemetry.finish()


# ------------------------------------------------------------------- report
class TestReportTables:
    def test_round_table_from_real_trace(self, telemetry_run):
        result, _, trace_dir = telemetry_run
        events = load_events(os.path.join(trace_dir, JSONL_FILE))
        headers, rows = round_table(events)
        assert headers[0] == "round"
        assert [row[0] for row in rows] == ["0", "1"]
        for row, round_result in zip(rows, result.rounds):
            assert float(row[headers.index("sim_s")]) == pytest.approx(
                round_result.round_duration, abs=1e-4)
            assert row[headers.index("train_spans")] == str(
                round_result.num_aggregated)

    def test_tier_and_category_tables(self, telemetry_run):
        _, _, trace_dir = telemetry_run
        events = load_events(os.path.join(trace_dir, JSONL_FILE))
        headers, rows = tier_table(events)
        assert [row[0] for row in rows] == ["tier0", "tier1"]
        cat_headers, cat_rows = category_table(events)
        assert "round" in [row[0] for row in cat_rows]

    def test_format_table_alignment_and_empty(self):
        rendered = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = rendered.splitlines()
        assert lines[0].startswith("a")
        assert lines[1] == "---  --"
        assert format_table(["a"], []) == "(no data)"

    def test_run_report_cli(self, telemetry_run):
        _, _, trace_dir = telemetry_run
        proc = subprocess.run(
            [sys.executable, os.path.join(REPO_ROOT, "scripts", "run_report.py"),
             trace_dir], capture_output=True, text=True, cwd=REPO_ROOT)
        assert proc.returncode == 0, proc.stderr
        assert "Per-round breakdown" in proc.stdout
        assert "tier0" in proc.stdout
        assert "repro_rounds_total" in proc.stdout
