"""Tests for the quantization substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis import output_error, profile_activation
from repro.quantization import (
    SUPPORTED_BITS,
    quantization_error,
    quantize_array,
    quantize_model,
    quantize_state_dict,
    quantized_model_bytes,
    quantized_nbytes,
    dequantize_state_dict,
    state_dict_nbytes,
)


class TestQuantizeArray:
    def test_roundtrip_shape_preserved(self):
        weights = np.random.default_rng(0).standard_normal((6, 10))
        quantized = quantize_array(weights, 4)
        assert quantized.dequantize().shape == weights.shape

    def test_unsupported_bits_rejected(self):
        with pytest.raises(ValueError):
            quantize_array(np.ones((2, 2)), 5)

    def test_error_decreases_with_more_bits(self):
        weights = np.random.default_rng(1).standard_normal((16, 32))
        errors = [quantization_error(weights, bits) for bits in (2, 4, 8)]
        assert errors[0] > errors[1] > errors[2]

    def test_8bit_error_is_small(self):
        weights = np.random.default_rng(2).standard_normal((8, 8))
        assert quantization_error(weights, 8) < 0.02

    def test_zero_matrix_is_exact(self):
        weights = np.zeros((4, 4))
        assert quantization_error(weights, 2) == 0.0
        assert np.allclose(quantize_array(weights, 2).dequantize(), 0.0)

    def test_codes_within_range(self):
        weights = np.random.default_rng(3).standard_normal((5, 7)) * 100
        for bits in SUPPORTED_BITS:
            codes = quantize_array(weights, bits).codes
            qmax = 2 ** (bits - 1) - 1
            assert codes.max() <= qmax
            assert codes.min() >= -qmax - 1

    def test_nbytes_scales_with_bits(self):
        weights = np.random.default_rng(4).standard_normal((8, 16))
        small = quantize_array(weights, 2).nbytes
        large = quantize_array(weights, 8).nbytes
        assert small < large

    def test_1d_array_supported(self):
        vector = np.random.default_rng(5).standard_normal(12)
        restored = quantize_array(vector, 8).dequantize()
        assert restored.shape == vector.shape
        assert np.allclose(restored, vector, atol=0.1)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, (4, 6), elements=st.floats(min_value=-10, max_value=10,
                                                     allow_nan=False, allow_infinity=False)))
def test_quantization_error_bounded_by_step_size(weights):
    """Property: per-element error never exceeds one quantization step per row."""
    quantized = quantize_array(weights, 4)
    restored = quantized.dequantize()
    step = quantized.scales  # one step = scale
    per_row_error = np.abs(weights - restored).max(axis=1)
    assert np.all(per_row_error <= step + 1e-9)


class TestStateDictQuantization:
    def test_quantize_and_dequantize_state_dict(self):
        state = {"a": np.random.default_rng(0).standard_normal((4, 4)),
                 "b": np.random.default_rng(1).standard_normal((2, 8))}
        quantized = quantize_state_dict(state, 4)
        restored = dequantize_state_dict(quantized)
        assert set(restored) == {"a", "b"}
        assert restored["a"].shape == (4, 4)

    def test_quantized_bytes_smaller_than_full_precision(self):
        state = {"w": np.random.default_rng(0).standard_normal((64, 64))}
        assert quantized_nbytes(quantize_state_dict(state, 4)) < state_dict_nbytes(state)


class TestQuantizeModel:
    def test_returns_new_model_same_architecture(self, tiny_model):
        quantized = quantize_model(tiny_model, 4)
        assert quantized is not tiny_model
        assert quantized.local_experts_per_layer() == tiny_model.local_experts_per_layer()

    def test_original_model_untouched(self, tiny_model):
        before = tiny_model.state_dict()
        quantize_model(tiny_model, 2)
        after = tiny_model.state_dict()
        for key in before:
            assert np.allclose(before[key], after[key])

    def test_embeddings_and_norms_kept_full_precision(self, tiny_model):
        quantized = quantize_model(tiny_model, 2)
        assert np.allclose(quantized.token_embedding.weight.data,
                           tiny_model.token_embedding.weight.data)

    def test_expert_weights_actually_quantized(self, tiny_model):
        quantized = quantize_model(tiny_model, 2)
        original = tiny_model.get_expert(0, 0).w_gate.weight.data
        low_bit = quantized.get_expert(0, 0).w_gate.weight.data
        assert not np.allclose(original, low_bit)

    def test_output_error_decreases_with_bits(self, tiny_model, gsm_batches):
        errors = []
        for bits in (2, 4, 8):
            quantized = quantize_model(tiny_model, bits)
            errors.append(output_error(tiny_model, quantized, gsm_batches[:1]))
        assert errors[0] > errors[2]

    def test_routing_similarity_better_with_more_bits(self, tiny_model, gsm_batches):
        """The paper's core profiling assumption: quantized routing approximates full routing."""
        reference = profile_activation(tiny_model, gsm_batches)
        divergence = {}
        for bits in (2, 8):
            quantized = quantize_model(tiny_model, bits)
            estimate = profile_activation(quantized, gsm_batches)
            divergence[bits] = float(np.mean([
                np.abs(r - e).sum() for r, e in zip(reference.frequencies, estimate.frequencies)
            ]))
        assert divergence[8] <= divergence[2] + 1e-9

    def test_quantized_model_bytes_smaller(self, tiny_model):
        full = quantized_model_bytes(tiny_model, 8)
        small = quantized_model_bytes(tiny_model, 2)
        assert small < full
