"""Tests for expert utility, forward-only gradient estimation and role assignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EpsilonSchedule,
    ExpertRoleAssigner,
    UtilityTracker,
    estimate_expert_gradient,
    expert_utility,
    gradient_cosine_distance,
    normalize_utilities,
    solve_candidate_selection,
    true_expert_gradient,
)


class TestExpertUtility:
    def test_formula(self):
        assert expert_utility(4, 2.0) == pytest.approx(4.0)
        assert expert_utility(9, 1.0) == pytest.approx(3.0)

    def test_zero_data_zero_utility(self):
        assert expert_utility(0, 10.0) == 0.0

    def test_negative_gradient_clamped(self):
        assert expert_utility(4, -1.0) == 0.0

    def test_monotonic_in_both_arguments(self):
        assert expert_utility(16, 1.0) > expert_utility(4, 1.0)
        assert expert_utility(4, 2.0) > expert_utility(4, 1.0)

    def test_normalize_utilities(self):
        normalized = normalize_utilities({(0, 0): 2.0, (0, 1): 4.0})
        assert normalized[(0, 1)] == pytest.approx(1.0)
        assert normalized[(0, 0)] == pytest.approx(0.5)
        assert normalize_utilities({}) == {}
        assert normalize_utilities({(0, 0): 0.0}) == {(0, 0): 0.0}


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=10_000), st.floats(min_value=0, max_value=100))
def test_expert_utility_non_negative_property(data_size, grad_norm):
    assert expert_utility(data_size, grad_norm) >= 0.0


class TestUtilityTracker:
    def test_initialize_from_frequencies(self):
        tracker = UtilityTracker()
        tracker.initialize_from_frequencies([((0, 0), 0.2), ((0, 1), 0.8)])
        assert tracker.get((0, 1)) == pytest.approx(1.0)
        assert tracker.stale_experts() == [(0, 0), (0, 1)]

    def test_first_observation_overwrites_initialisation(self):
        tracker = UtilityTracker(smoothing=0.5)
        tracker.initialize_from_frequencies([((0, 0), 0.5)])
        tracker.observe((0, 0), 10.0)
        assert tracker.get((0, 0)) == pytest.approx(10.0)

    def test_subsequent_observations_smoothed(self):
        tracker = UtilityTracker(smoothing=0.5)
        tracker.observe((0, 0), 10.0)
        tracker.observe((0, 0), 0.0)
        assert tracker.get((0, 0)) == pytest.approx(5.0)

    def test_observe_many_and_top_experts(self):
        tracker = UtilityTracker()
        tracker.observe_many({(0, 0): 1.0, (0, 1): 5.0, (1, 0): 3.0})
        assert tracker.top_experts(2) == [(0, 1), (1, 0)]
        assert tracker.top_experts(1, layer=0) == [(0, 1)]

    def test_stale_experts_cleared_after_observation(self):
        tracker = UtilityTracker()
        tracker.initialize_from_frequencies([((0, 0), 0.5), ((0, 1), 0.2)])
        tracker.observe((0, 0), 1.0)
        assert tracker.stale_experts() == [(0, 1)]

    def test_negative_observation_clamped(self):
        tracker = UtilityTracker()
        tracker.observe((0, 0), -5.0)
        assert tracker.get((0, 0)) == 0.0


class TestGradientEstimation:
    def test_estimate_has_positive_norm_and_restores_weights(self, tiny_model, gsm_batches):
        before = tiny_model.get_expert(0, 0).weight_vector().copy()
        estimate = estimate_expert_gradient(tiny_model, gsm_batches[:1], 0, 0,
                                            num_perturbations=2, seed=0)
        after = tiny_model.get_expert(0, 0).weight_vector()
        assert np.allclose(before, after)
        assert estimate.norm() > 0
        assert estimate.flatten().shape[0] == before.shape[0]

    def test_estimate_correlates_with_true_gradient(self, tiny_model, gsm_batches):
        """The forward-only estimate should point roughly in the true direction."""
        layer, expert = 0, int(np.argmax(
            tiny_model.activation_frequencies()[0])) if tiny_model.routing_records()[0].total_tokens else 0
        # make sure routing stats exist
        batch = gsm_batches[0]
        tiny_model.forward(batch.input_ids, attention_mask=batch.attention_mask)
        expert = int(np.argmax(tiny_model.activation_frequencies()[0]))
        truth = true_expert_gradient(tiny_model, gsm_batches[:1], layer, expert)
        estimate = estimate_expert_gradient(tiny_model, gsm_batches[:1], layer, expert,
                                            num_perturbations=24, sigma=1e-3, seed=1)
        distance = gradient_cosine_distance(estimate, truth)
        assert distance < 1.0  # strictly better than orthogonal

    def test_invalid_arguments(self, tiny_model, gsm_batches):
        with pytest.raises(ValueError):
            estimate_expert_gradient(tiny_model, gsm_batches[:1], 0, 0, num_perturbations=0)
        with pytest.raises(ValueError):
            estimate_expert_gradient(tiny_model, gsm_batches[:1], 0, 0, sigma=0.0)
        with pytest.raises(ValueError):
            estimate_expert_gradient(tiny_model, [], 0, 0)
        with pytest.raises(ValueError):
            true_expert_gradient(tiny_model, [], 0, 0)

    def test_true_gradient_nonzero_for_routed_expert(self, tiny_model, gsm_batches):
        batch = gsm_batches[0]
        tiny_model.forward(batch.input_ids, attention_mask=batch.attention_mask)
        expert = int(np.argmax(tiny_model.activation_frequencies()[0]))
        truth = true_expert_gradient(tiny_model, gsm_batches[:1], 0, expert)
        total = sum(np.abs(g).sum() for g in truth.values())
        assert total > 0

    def test_cosine_distance_of_identical_gradients_is_zero(self, tiny_model, gsm_batches):
        batch = gsm_batches[0]
        tiny_model.forward(batch.input_ids, attention_mask=batch.attention_mask)
        expert = int(np.argmax(tiny_model.activation_frequencies()[0]))
        truth = true_expert_gradient(tiny_model, gsm_batches[:1], 0, expert)
        from repro.core.gradient_estimation import GradientEstimate
        fake = GradientEstimate(layer=0, expert=expert, gradient=truth, num_perturbations=1)
        assert gradient_cosine_distance(fake, truth) == pytest.approx(0.0, abs=1e-12)


class TestCandidateSelection:
    def test_top_k_by_utility(self):
        utilities = {(0, 0): 0.1, (0, 1): 0.9, (1, 0): 0.5}
        assert solve_candidate_selection(utilities, 2) == [(0, 1), (1, 0)]

    def test_budget_larger_than_pool(self):
        utilities = {(0, 0): 0.1}
        assert solve_candidate_selection(utilities, 10) == [(0, 0)]

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            solve_candidate_selection({(0, 0): 1.0}, 0)

    def test_deterministic_tie_breaking(self):
        utilities = {(0, 1): 0.5, (0, 0): 0.5}
        assert solve_candidate_selection(utilities, 1) == [(0, 0)]


class TestExpertRoleAssigner:
    def _experts(self, layers=2, per_layer=4):
        return [(l, e) for l in range(layers) for e in range(per_layer)]

    def test_requires_experts(self):
        with pytest.raises(ValueError):
            ExpertRoleAssigner([])

    def test_assignment_sizes_follow_epsilon(self):
        assigner = ExpertRoleAssigner(self._experts(), epsilon=EpsilonSchedule.fixed(0.5), seed=0)
        utilities = {0: {key: float(i) for i, key in enumerate(self._experts())}}
        assignment = assigner.assign(0, utilities, {0: 4})[0]
        assert len(assignment.candidates) == 4
        assert len(assignment.exploitation) == 2
        assert len(assignment.exploration) == 2
        assert assignment.epsilon == pytest.approx(0.5)

    def test_exploitation_is_highest_utility(self):
        assigner = ExpertRoleAssigner(self._experts(), epsilon=EpsilonSchedule.fixed(0.5), seed=0)
        utilities = {0: {key: float(i) for i, key in enumerate(self._experts())}}
        assignment = assigner.assign(0, utilities, {0: 4})[0]
        best = max(utilities[0], key=utilities[0].get)
        assert best in assignment.exploitation

    def test_exploration_disjoint_from_exploitation(self):
        assigner = ExpertRoleAssigner(self._experts(), epsilon=EpsilonSchedule.fixed(0.3), seed=1)
        utilities = {0: {key: 1.0 for key in self._experts()}}
        assignment = assigner.assign(0, utilities, {0: 6})[0]
        assert set(assignment.exploitation).isdisjoint(set(assignment.exploration))

    def test_full_exploitation_with_epsilon_one(self):
        assigner = ExpertRoleAssigner(self._experts(), epsilon=EpsilonSchedule.fixed(1.0), seed=0)
        utilities = {0: {key: float(i) for i, key in enumerate(self._experts())}}
        assignment = assigner.assign(0, utilities, {0: 3})[0]
        assert len(assignment.exploitation) == 3
        assert assignment.exploration == []

    def test_missing_utilities_default_to_zero(self):
        assigner = ExpertRoleAssigner(self._experts(), seed=0)
        assignment = assigner.assign(0, {}, {0: 2})[0]
        assert len(assignment.candidates) == 2

    def test_dynamic_epsilon_increases_over_rounds(self):
        assigner = ExpertRoleAssigner(self._experts(),
                                      epsilon=EpsilonSchedule(initial=0.3, final=0.9,
                                                              warmup_rounds=5), seed=0)
        utilities = {0: {key: 1.0 for key in self._experts()}}
        early = assigner.assign(0, utilities, {0: 4})[0]
        late = assigner.assign(10, utilities, {0: 4})[0]
        assert late.epsilon > early.epsilon
        assert len(late.exploitation) >= len(early.exploitation)

    def test_multiple_participants_assigned_independently(self):
        assigner = ExpertRoleAssigner(self._experts(), seed=0)
        utilities = {0: {(0, 0): 5.0}, 1: {(1, 3): 5.0}}
        assignments = assigner.assign(0, utilities, {0: 2, 1: 2})
        assert (0, 0) in assignments[0].candidates
        assert (1, 3) in assignments[1].candidates

    def test_layer_grouping_helpers(self):
        assigner = ExpertRoleAssigner(self._experts(), epsilon=EpsilonSchedule.fixed(0.5), seed=0)
        utilities = {0: {key: float(i) for i, key in enumerate(self._experts())}}
        assignment = assigner.assign(0, utilities, {0: 4})[0]
        by_layer = assignment.tuning_by_layer()
        flattened = [(l, e) for l, experts in by_layer.items() for e in experts]
        assert sorted(flattened) == sorted(assignment.exploitation)
