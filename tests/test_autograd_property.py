"""Property-based tests (hypothesis) for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autograd import Tensor

finite_floats = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False)


def small_arrays(max_dims=3, max_side=4):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=finite_floats,
    )


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_addition_gradient_is_ones(data):
    t = Tensor(data.copy(), requires_grad=True)
    (t + 1.0).sum().backward()
    assert np.allclose(t.grad, 1.0)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_scaling_gradient_matches_factor(data):
    t = Tensor(data.copy(), requires_grad=True)
    (t * 3.5).sum().backward()
    assert np.allclose(t.grad, 3.5)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_softmax_rows_are_distributions(data):
    t = Tensor(data.copy())
    probs = t.softmax(axis=-1).data
    assert np.all(probs >= 0)
    assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_square_gradient_is_two_x(data):
    t = Tensor(data.copy(), requires_grad=True)
    (t * t).sum().backward()
    assert np.allclose(t.grad, 2 * data, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4).flatmap(
        lambda shape: st.tuples(
            arrays(np.float64, shape, elements=finite_floats),
            arrays(np.float64, shape, elements=finite_floats),
        )
    )
)
def test_addition_is_commutative_in_forward(pair):
    a, b = pair
    left = (Tensor(a) + Tensor(b)).data
    right = (Tensor(b) + Tensor(a)).data
    assert np.allclose(left, right)


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float64, (3, 4), elements=finite_floats),
    arrays(np.float64, (4, 2), elements=finite_floats),
)
def test_matmul_matches_numpy(a, b):
    out = (Tensor(a) @ Tensor(b)).data
    assert np.allclose(out, a @ b)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, (5,), elements=st.floats(min_value=-3, max_value=3)))
def test_tanh_bounded_and_gradient_bounded(data):
    t = Tensor(data.copy(), requires_grad=True)
    out = t.tanh()
    out.sum().backward()
    assert np.all(np.abs(out.data) <= 1.0)
    assert np.all(t.grad <= 1.0 + 1e-12)
    assert np.all(t.grad >= 0.0)


@settings(max_examples=30, deadline=None)
@given(small_arrays())
def test_mean_equals_sum_over_size(data):
    t = Tensor(data.copy())
    assert np.allclose(t.mean().item(), data.sum() / data.size)


@settings(max_examples=30, deadline=None)
@given(small_arrays(max_dims=2))
def test_reshape_roundtrip_preserves_gradient_shape(data):
    t = Tensor(data.copy(), requires_grad=True)
    t.reshape(-1).sum().backward()
    assert t.grad.shape == data.shape
    assert np.allclose(t.grad, 1.0)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, (4, 3), elements=st.floats(min_value=0.1, max_value=5.0)))
def test_log_exp_inverse(data):
    t = Tensor(data.copy())
    assert np.allclose(t.log().exp().data, data, rtol=1e-9)
