"""Tests for the attention layer and the top-k gating network."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.models import GatingNetwork, MultiHeadSelfAttention, RoutingRecord, causal_mask


class TestCausalMask:
    def test_lower_triangular(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4)
        assert mask[0, 0] and not mask[0, 1]
        assert mask[3].all()

    def test_diagonal_always_allowed(self):
        mask = causal_mask(6)
        assert np.all(np.diag(mask))


class TestMultiHeadSelfAttention:
    def _layer(self, d_model=16, n_heads=4):
        return MultiHeadSelfAttention(d_model, n_heads, rng=np.random.default_rng(0))

    def test_output_shape(self):
        attn = self._layer()
        x = Tensor(np.random.default_rng(0).standard_normal((2, 5, 16)))
        assert attn(x).shape == (2, 5, 16)

    def test_invalid_head_count_rejected(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)

    def test_records_token_attention(self):
        attn = self._layer()
        x = Tensor(np.random.default_rng(1).standard_normal((2, 6, 16)))
        attn(x)
        received = attn.last_token_attention
        assert received.shape == (2, 6)
        assert np.all(received >= 0)

    def test_padding_mask_zeroes_attention_received(self):
        attn = self._layer()
        x = Tensor(np.random.default_rng(2).standard_normal((1, 5, 16)))
        mask = np.array([[True, True, True, False, False]])
        attn(x, attention_mask=mask)
        received = attn.last_token_attention
        assert np.allclose(received[0, 3:], 0.0)
        assert received[0, 0] > 0

    def test_causality_first_token_independent_of_future(self):
        attn = self._layer()
        rng = np.random.default_rng(3)
        x1 = rng.standard_normal((1, 4, 16))
        x2 = x1.copy()
        x2[0, 2:] += 10.0  # change the future
        out1 = attn(Tensor(x1)).data
        out2 = attn(Tensor(x2)).data
        assert np.allclose(out1[0, 0], out2[0, 0], atol=1e-8)
        assert not np.allclose(out1[0, 3], out2[0, 3])

    def test_gradients_flow_through_attention(self):
        attn = self._layer()
        x = Tensor(np.random.default_rng(4).standard_normal((2, 4, 16)), requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None
        assert attn.q_proj.weight.grad is not None


class TestGatingNetwork:
    def _gate(self, num_experts=6, top_k=2):
        return GatingNetwork(8, num_experts, top_k, rng=np.random.default_rng(0))

    def test_topk_shapes(self):
        gate = self._gate()
        x = Tensor(np.random.default_rng(0).standard_normal((10, 8)))
        idx, weights, probs = gate(x)
        assert idx.shape == (10, 2)
        assert weights.shape == (10, 2)
        assert probs.shape == (10, 6)

    def test_topk_indices_valid_and_distinct(self):
        gate = self._gate()
        x = Tensor(np.random.default_rng(1).standard_normal((32, 8)))
        idx, _, _ = gate(x)
        assert idx.min() >= 0 and idx.max() < 6
        assert all(len(set(row)) == len(row) for row in idx)

    def test_topk_weights_normalised(self):
        gate = self._gate()
        x = Tensor(np.random.default_rng(2).standard_normal((16, 8)))
        _, weights, _ = gate(x)
        assert np.allclose(weights.data.sum(axis=-1), 1.0)

    def test_top_indices_are_highest_probability(self):
        gate = self._gate()
        x = Tensor(np.random.default_rng(3).standard_normal((8, 8)))
        idx, _, probs = gate(x)
        for row in range(8):
            top_probs = probs[row, idx[row]]
            assert np.all(top_probs >= np.sort(probs[row])[-2] - 1e-12)

    def test_top_k_cannot_exceed_experts(self):
        with pytest.raises(ValueError):
            GatingNetwork(8, 2, 3)

    def test_gradient_flows_to_gate_projection(self):
        gate = self._gate()
        x = Tensor(np.random.default_rng(4).standard_normal((4, 8)), requires_grad=True)
        _, weights, _ = gate(x)
        weights.sum().backward()
        assert gate.proj.weight.grad is not None

    def test_noise_only_in_training_mode(self):
        gate = GatingNetwork(8, 4, 1, noise_std=5.0, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(5).standard_normal((4, 8)))
        gate.eval()
        idx_a, _, _ = gate(x)
        idx_b, _, _ = gate(x)
        assert np.array_equal(idx_a, idx_b)


class TestRoutingRecord:
    def test_empty_record(self):
        record = RoutingRecord.empty(4)
        assert np.allclose(record.activation_frequency(), 0.0)
        assert record.total_tokens == 0

    def test_activation_frequency_sums_to_one(self):
        record = RoutingRecord.empty(3)
        record.token_counts = np.array([2, 6, 2])
        freq = record.activation_frequency()
        assert np.allclose(freq.sum(), 1.0)
        assert freq[1] == pytest.approx(0.6)

    def test_average_attention_handles_zero_counts(self):
        record = RoutingRecord.empty(2)
        record.attention_sums = np.array([1.0, 0.0])
        record.token_counts = np.array([4, 0])
        avg = record.average_attention()
        assert avg[0] == pytest.approx(0.25)
        assert avg[1] == 0.0

    def test_merge_accumulates(self):
        a = RoutingRecord.empty(2)
        a.token_counts = np.array([1, 2])
        a.total_tokens = 3
        a.sample_ids[0].add(7)
        b = RoutingRecord.empty(2)
        b.token_counts = np.array([3, 1])
        b.total_tokens = 4
        b.sample_ids[0].add(9)
        a.merge(b)
        assert a.token_counts.tolist() == [4, 3]
        assert a.total_tokens == 7
        assert a.sample_ids[0] == {7, 9}

    def test_merge_rejects_mismatched_sizes(self):
        with pytest.raises(ValueError):
            RoutingRecord.empty(2).merge(RoutingRecord.empty(3))
