"""Tests for the device, memory, cost-model and timeline substrate."""

import pytest

from repro.models.presets import ARCHITECTURE_DESCRIPTORS
from repro.systems import (
    CONSUMER_GPU,
    L20_SERVER,
    SMALL_GPU,
    CostModel,
    DeviceProfile,
    MemoryModel,
    RoundCostBreakdown,
    RoundTimeline,
    RunTimeline,
    SimulatedClock,
    expert_memory_bytes,
    heterogeneous_fleet,
    model_memory_bytes,
)


class TestDeviceProfile:
    def test_presets_are_consistent(self):
        assert SMALL_GPU.gpu_memory_gb < CONSUMER_GPU.gpu_memory_gb < L20_SERVER.gpu_memory_gb
        assert L20_SERVER.effective_flops > CONSUMER_GPU.effective_flops

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            DeviceProfile("bad", gpu_memory_gb=0, compute_tflops=1, pcie_bandwidth_gbps=1,
                          network_mbps=1)
        with pytest.raises(ValueError):
            DeviceProfile("bad", gpu_memory_gb=1, compute_tflops=1, pcie_bandwidth_gbps=1,
                          network_mbps=1, compute_efficiency=0.0)

    def test_scaled_device(self):
        faster = CONSUMER_GPU.scaled(2.0)
        assert faster.compute_tflops == pytest.approx(CONSUMER_GPU.compute_tflops * 2)
        assert faster.gpu_memory_gb == CONSUMER_GPU.gpu_memory_gb

    def test_heterogeneous_fleet(self):
        fleet = heterogeneous_fleet(8, seed=0, spread=0.5)
        assert len(fleet) == 8
        tflops = [d.compute_tflops for d in fleet]
        assert max(tflops) > min(tflops)

    def test_fleet_validation(self):
        with pytest.raises(ValueError):
            heterogeneous_fleet(0)
        with pytest.raises(ValueError):
            heterogeneous_fleet(2, spread=1.5)


class TestMemoryModel:
    @pytest.fixture()
    def memory(self):
        return MemoryModel(ARCHITECTURE_DESCRIPTORS["deepseek-moe"])

    def test_totals_consistent(self, memory):
        assert memory.total_bytes == pytest.approx(
            memory.expert_bytes_total + memory.dense_bytes)
        assert memory.num_experts_total == 28 * 64

    def test_more_memory_loads_more_experts(self, memory):
        assert memory.max_loadable_experts(L20_SERVER) >= memory.max_loadable_experts(SMALL_GPU)

    def test_loadable_experts_bounded_by_total(self, memory):
        assert memory.max_loadable_experts(L20_SERVER) <= memory.num_experts_total

    def test_tiny_device_cannot_load_anything(self, memory):
        tiny = DeviceProfile("tiny", gpu_memory_gb=1.0, compute_tflops=1.0,
                             pcie_bandwidth_gbps=1.0, network_mbps=1.0)
        assert memory.max_loadable_experts(tiny) == 0

    def test_tuning_budget_scales_with_round_time(self, memory):
        short = memory.max_tuning_experts(CONSUMER_GPU, round_time_budget_s=10, tokens_per_round=4096)
        long = memory.max_tuning_experts(CONSUMER_GPU, round_time_budget_s=1000, tokens_per_round=4096)
        assert long >= short

    def test_tuning_budget_validation(self, memory):
        with pytest.raises(ValueError):
            memory.max_tuning_experts(CONSUMER_GPU, round_time_budget_s=0, tokens_per_round=10)

    def test_mini_model_memory_helpers(self, tiny_config):
        assert model_memory_bytes(tiny_config) > expert_memory_bytes(tiny_config) > 0


class TestCostModel:
    @pytest.fixture()
    def cost(self):
        return CostModel(CONSUMER_GPU, MemoryModel(ARCHITECTURE_DESCRIPTORS["llama-moe"]))

    def test_training_time_monotonic_in_tokens(self, cost):
        assert cost.training_time(2048, 8, 8) < cost.training_time(8192, 8, 8)

    def test_training_time_monotonic_in_tuning_experts(self, cost):
        fewer = cost.training_time(4096, tuning_experts=4, frozen_experts=12)
        more = cost.training_time(4096, tuning_experts=12, frozen_experts=4)
        assert more > fewer

    def test_quantized_training_faster(self, cost):
        assert cost.training_time(4096, 8, 0, quantized=True) < cost.training_time(4096, 8, 0)

    def test_profiling_cheaper_than_training(self, cost):
        assert cost.profiling_time(4096, bits=4) < cost.training_time(4096, 16, 0)

    def test_lower_bits_profile_faster(self, cost):
        assert cost.profiling_time(4096, bits=2) <= cost.profiling_time(4096, bits=8)

    def test_offload_time_linear(self, cost):
        assert cost.offload_time(20) == pytest.approx(2 * cost.offload_time(10))

    def test_communication_slower_than_pcie(self, cost):
        experts = 16
        assert cost.upload_time(experts) > cost.offload_time(experts)

    def test_forward_time_cheaper_than_training(self, cost):
        assert cost.forward_time(4096) < cost.training_time(4096, 16, 0)

    def test_merging_and_assignment_small(self, cost):
        assert cost.merging_time(100) < 1.0
        assert cost.assignment_time(512) < 1.0


class TestRoundCostBreakdown:
    def test_total_without_overlap(self):
        breakdown = RoundCostBreakdown(profiling=2.0, training=5.0, communication=1.0)
        assert breakdown.total() == pytest.approx(8.0)

    def test_overlap_hides_profiling_behind_communication(self):
        breakdown = RoundCostBreakdown(profiling=2.0, training=5.0, communication=3.0)
        assert breakdown.total(overlap_profiling=True) == pytest.approx(8.0)

    def test_overlap_charges_excess_profiling(self):
        breakdown = RoundCostBreakdown(profiling=10.0, training=5.0, communication=3.0)
        assert breakdown.total(overlap_profiling=True) == pytest.approx(5.0 + 3.0 + 7.0)

    def test_as_dict_keys(self):
        keys = set(RoundCostBreakdown().as_dict())
        assert {"profiling", "merging", "assignment", "training",
                "offloading", "quantization", "communication"} == keys


class TestTimeline:
    def test_clock_advances(self):
        clock = SimulatedClock()
        assert clock.now() == 0.0
        clock.advance(5.0)
        assert clock.now() == 5.0
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        clock.reset()
        assert clock.now() == 0.0

    def test_round_duration_is_slowest_participant_plus_server(self):
        timeline = RoundTimeline(round_index=0)
        timeline.record_participant(0, RoundCostBreakdown(training=3.0))
        timeline.record_participant(1, RoundCostBreakdown(training=7.0))
        timeline.server_time = 1.0
        assert timeline.round_duration() == pytest.approx(8.0)

    def test_phase_totals_sum_participants(self):
        timeline = RoundTimeline(round_index=0)
        timeline.record_participant(0, RoundCostBreakdown(training=3.0, profiling=1.0))
        timeline.record_participant(1, RoundCostBreakdown(training=2.0))
        totals = timeline.phase_totals()
        assert totals["training"] == pytest.approx(5.0)
        assert totals["profiling"] == pytest.approx(1.0)

    def test_run_timeline_aggregation(self):
        run = RunTimeline()
        for r in range(2):
            timeline = RoundTimeline(round_index=r)
            timeline.record_participant(0, RoundCostBreakdown(training=2.0))
            run.add(timeline)
        assert run.total_time() == pytest.approx(4.0)
        fractions = run.phase_fractions()
        assert fractions["training"] == pytest.approx(1.0)

    def test_empty_run_fractions(self):
        assert RunTimeline().phase_fractions() == {}
