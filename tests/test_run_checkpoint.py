"""Durable run checkpoint/resume: a killed-then-resumed run == an uninterrupted one."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import FluxConfig, FluxFineTuner
from repro.models.presets import ARCHITECTURE_DESCRIPTORS
from repro.runtime import latest_checkpoint, load_run_checkpoint
from repro.runtime.checkpoint import (
    DELTA_BASE_FILE,
    MODEL_DELTA_FILE,
    MODEL_FILE,
    RunCheckpointer,
    STATE_FILE,
)
from repro.systems import CONSUMER_GPU, CostModel, MemoryModel

from test_runtime import ConstantMethod, build_federation

ROUND_FIELDS = (
    "round_index", "train_loss", "metric_value", "simulated_time",
    "round_duration", "num_selected", "num_aggregated", "num_dropped",
    "num_stragglers", "mean_staleness", "wire_bytes", "wire_seconds",
    "payloads_lost", "payloads_corrupted", "edge_bytes", "edge_seconds",
    "edge_payloads", "tier_bytes", "tier_seconds", "tier_payloads",
)


def assert_run_results_equal(actual, expected):
    """Field-by-field RunResult equality (exact, no tolerances)."""
    assert actual.method == expected.method
    assert len(actual.rounds) == len(expected.rounds)
    for got, want in zip(actual.rounds, expected.rounds):
        for field_name in ROUND_FIELDS:
            assert getattr(got, field_name) == getattr(want, field_name), field_name
        assert got.timeline.participant_times == want.timeline.participant_times
        assert got.timeline.server_time == want.timeline.server_time
    assert actual.tracker.target == expected.tracker.target
    assert actual.tracker.as_series() == expected.tracker.as_series()
    assert actual.timeline.total_time() == expected.timeline.total_time()


def assert_models_equal(model_a, model_b):
    state_a, state_b = model_a.state_dict(), model_b.state_dict()
    assert set(state_a) == set(state_b)
    for name in state_a:
        assert np.array_equal(state_a[name], state_b[name]), name


def build_constant_tuner(vocab, tiny_config, **config_kwargs):
    server, participants, test, config = build_federation(
        vocab, tiny_config, **config_kwargs)
    return ConstantMethod(server, participants, test, config=config)


def build_flux_tuner(vocab, tiny_config, **config_kwargs):
    server, participants, test, config = build_federation(
        vocab, tiny_config, num_clients=3, **config_kwargs)
    memory = MemoryModel(ARCHITECTURE_DESCRIPTORS["llama-moe"])
    cost_models = {p.participant_id: CostModel(CONSUMER_GPU, memory)
                   for p in participants}
    return FluxFineTuner(server, participants, test, cost_models=cost_models,
                         config=config, flux_config=FluxConfig(seed=0))


SCHEDULER_KNOBS = {
    "sync": {"participants_per_round": 3},
    "semisync": {"scheduler": "semisync", "deadline_quantile": 0.7,
                 "participants_per_round": 3},
    "async": {"scheduler": "async", "buffer_size": 2, "async_concurrency": 2,
              "participants_per_round": 2},
}


class TestResumeEquivalence:
    """run(N) == run to a checkpoint, rebuild everything, resume, finish."""

    def _resume_pair(self, vocab, tiny_config, build, total_rounds=4,
                     interrupt_after=2, **knobs):
        checkpoint_dir = knobs.pop("_checkpoint_dir")
        uninterrupted = build(vocab, tiny_config, **knobs)
        expected = uninterrupted.run(num_rounds=total_rounds)
        durable = dict(knobs, checkpoint_every=interrupt_after,
                       checkpoint_dir=str(checkpoint_dir))
        first = build(vocab, tiny_config, **durable)
        first.run(num_rounds=interrupt_after)

        snapshot = latest_checkpoint(str(checkpoint_dir))
        assert snapshot is not None

        resumed_tuner = build(vocab, tiny_config, **durable)
        resumed = resumed_tuner.run(num_rounds=total_rounds, resume_from=snapshot)
        assert_run_results_equal(resumed, expected)
        assert_models_equal(resumed_tuner.server.global_model,
                            uninterrupted.server.global_model)
        return resumed

    @pytest.mark.parametrize("scheduler", ["sync", "semisync", "async"])
    def test_resume_matches_uninterrupted_per_scheduler(self, vocab, tiny_config,
                                                        tmp_path, scheduler):
        self._resume_pair(vocab, tiny_config, build_constant_tuner,
                          _checkpoint_dir=tmp_path / scheduler,
                          **SCHEDULER_KNOBS[scheduler])

    def test_resume_with_faults_and_wire_transport(self, vocab, tiny_config, tmp_path):
        self._resume_pair(
            vocab, tiny_config, build_constant_tuner,
            _checkpoint_dir=tmp_path / "wire",
            participants_per_round=3, transport="wire",
            streaming_aggregation=True, channel_loss_prob=0.2,
            dropout_prob=0.2, straggler_prob=0.3)

    def test_resume_with_sharded_hierarchical_trimmed_mean(self, vocab, tiny_config,
                                                           tmp_path):
        resumed = self._resume_pair(
            vocab, tiny_config, build_constant_tuner,
            _checkpoint_dir=tmp_path / "topo",
            participants_per_round=3, num_shards=2, num_edge_aggregators=2,
            edge_latency_s=0.05, aggregation="trimmed_mean", trim_ratio=0.2)
        assert all(r.edge_payloads > 0 for r in resumed.rounds)

    def test_flux_resume_matches_uninterrupted(self, vocab, tiny_config, tmp_path):
        self._resume_pair(vocab, tiny_config, build_flux_tuner,
                          _checkpoint_dir=tmp_path / "flux",
                          participants_per_round=2)

    def test_killed_run_resumes_from_latest_snapshot(self, vocab, tiny_config,
                                                     tmp_path):
        """A crash between checkpoints loses only the rounds after the snapshot."""
        expected = build_constant_tuner(
            vocab, tiny_config, participants_per_round=3).run(num_rounds=4)

        class DiesAtRoundThree(ConstantMethod):
            def before_round(self, round_index, selected):
                if round_index == 3:
                    raise RuntimeError("simulated coordinator crash")
                super().before_round(round_index, selected)

        durable = dict(participants_per_round=3, checkpoint_every=2,
                       checkpoint_dir=str(tmp_path / "crash"))
        server, participants, test, config = build_federation(
            vocab, tiny_config, **durable)
        with pytest.raises(RuntimeError, match="simulated coordinator crash"):
            DiesAtRoundThree(server, participants, test, config=config).run(4)

        snapshot = latest_checkpoint(str(tmp_path / "crash"))
        assert snapshot is not None and snapshot.endswith("round_00002")
        resumed_tuner = build_constant_tuner(vocab, tiny_config, **durable)
        resumed = resumed_tuner.run(num_rounds=4, resume_from=snapshot)
        assert_run_results_equal(resumed, expected)

    def test_resume_past_the_end_returns_completed_run(self, vocab, tiny_config,
                                                       tmp_path):
        durable = dict(participants_per_round=3, checkpoint_every=2,
                       checkpoint_dir=str(tmp_path / "done"))
        first = build_constant_tuner(vocab, tiny_config, **durable)
        expected = first.run(num_rounds=2)
        snapshot = latest_checkpoint(str(tmp_path / "done"))
        resumed = build_constant_tuner(vocab, tiny_config, **durable).run(
            num_rounds=2, resume_from=snapshot)
        assert_run_results_equal(resumed, expected)


class TestCheckpointMechanics:
    def test_checkpointer_cadence_and_paths(self, tmp_path):
        checkpointer = RunCheckpointer(directory=str(tmp_path), every=3)
        assert [n for n in range(1, 10) if checkpointer.due(n)] == [3, 6, 9]
        assert checkpointer.path_for(6).endswith("round_00006")
        with pytest.raises(ValueError):
            RunCheckpointer(directory=str(tmp_path), every=0)
        with pytest.raises(ValueError):
            RunCheckpointer(directory="", every=1)

    def test_snapshot_directory_contents(self, vocab, tiny_config, tmp_path):
        tuner = build_constant_tuner(
            vocab, tiny_config, participants_per_round=3, checkpoint_every=1,
            checkpoint_dir=str(tmp_path))
        tuner.run(num_rounds=2)
        snapshots = sorted(os.listdir(tmp_path))
        assert snapshots == ["round_00001", "round_00002"]
        loaded = load_run_checkpoint(os.path.join(tmp_path, "round_00002"))
        assert loaded["method"] == "constant"
        assert loaded["scheduler"] == "sync"
        assert loaded["next_round"] == 2
        assert len(loaded["rounds"]) == 2
        assert set(loaded["participants"]) == {0, 1, 2, 3}
        assert loaded["model_state"]  # parameters travel in model.npz

    def test_latest_checkpoint_skips_torn_snapshots(self, tmp_path):
        assert latest_checkpoint(str(tmp_path / "missing")) is None
        os.makedirs(tmp_path / "round_00004")  # crash before run_state.pkl landed
        complete = tmp_path / "round_00002"
        os.makedirs(complete)
        (complete / STATE_FILE).write_bytes(b"")
        assert latest_checkpoint(str(tmp_path)) == str(complete)

    def test_resave_into_existing_snapshot_stays_complete(self, vocab, tiny_config,
                                                          tmp_path):
        """Resuming from an old snapshot and re-reaching a newer round must
        rewrite that round's directory atomically (marker dropped first)."""
        durable = dict(participants_per_round=3, checkpoint_every=1,
                       checkpoint_dir=str(tmp_path))
        build_constant_tuner(vocab, tiny_config, **durable).run(num_rounds=2)
        older = str(tmp_path / "round_00001")
        resumed = build_constant_tuner(vocab, tiny_config, **durable)
        resumed.run(num_rounds=2, resume_from=older)  # rewrites round_00002
        rewritten = load_run_checkpoint(str(tmp_path / "round_00002"))
        assert rewritten["next_round"] == 2
        assert not os.path.exists(tmp_path / "round_00002" / "model.tmp.npz")

    def test_channel_state_snapshots_do_not_alias(self):
        from repro.comm import Channel

        channel = Channel(participant_id=0)
        channel.send(b"xxxx")
        snapshot = channel.export_state()
        channel.send(b"yyyy")
        assert snapshot["stats"].payloads == 1  # point-in-time capture
        other = Channel(participant_id=1)
        other.import_state(snapshot)
        other.send(b"zzzz")
        assert snapshot["stats"].payloads == 1  # import copied, no aliasing
        assert other.stats.payloads == 2

    def test_load_rejects_incomplete_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no complete run checkpoint"):
            load_run_checkpoint(str(tmp_path))

    def test_resume_guards_method_and_scheduler(self, vocab, tiny_config, tmp_path):
        durable = dict(participants_per_round=3, checkpoint_every=1,
                       checkpoint_dir=str(tmp_path))
        build_constant_tuner(vocab, tiny_config, **durable).run(num_rounds=1)
        snapshot = latest_checkpoint(str(tmp_path))

        flux = build_flux_tuner(vocab, tiny_config, **durable)
        with pytest.raises(ValueError, match="method"):
            flux.run(num_rounds=2, resume_from=snapshot)

        semisync = build_constant_tuner(
            vocab, tiny_config, scheduler="semisync", **durable)
        with pytest.raises(ValueError, match="scheduler"):
            semisync.run(num_rounds=2, resume_from=snapshot)

    def test_resume_rejects_mismatched_run_config(self, vocab, tiny_config, tmp_path):
        durable = dict(participants_per_round=3, checkpoint_every=1,
                       checkpoint_dir=str(tmp_path))
        build_constant_tuner(vocab, tiny_config, **durable).run(num_rounds=1)
        snapshot = latest_checkpoint(str(tmp_path))

        drifted = build_constant_tuner(vocab, tiny_config,
                                       aggregation="trimmed_mean", **durable)
        with pytest.raises(ValueError, match="aggregation"):
            drifted.run(num_rounds=2, resume_from=snapshot)

        # Cadence and retention are allowed, non-diverging changes: both are
        # purely operational (e.g. turning on rotation to stop disk growth).
        relaxed = dict(durable, checkpoint_every=5, checkpoint_keep_last=2)
        resumed = build_constant_tuner(vocab, tiny_config, **relaxed)
        resumed.run(num_rounds=2, resume_from=snapshot)

    def test_resume_restores_edge_channel_positions(self, vocab, tiny_config,
                                                    tmp_path):
        knobs = dict(participants_per_round=3, num_edge_aggregators=2,
                     edge_latency_s=0.05)
        uninterrupted = build_constant_tuner(vocab, tiny_config, **knobs)
        uninterrupted.run(num_rounds=3)
        expected_sequences = [channel.export_state()["sequence"]
                              for channel in uninterrupted.topology.channels]

        durable = dict(knobs, checkpoint_every=2,
                       checkpoint_dir=str(tmp_path / "edges"))
        build_constant_tuner(vocab, tiny_config, **durable).run(num_rounds=2)
        snapshot = latest_checkpoint(str(tmp_path / "edges"))
        resumed_tuner = build_constant_tuner(vocab, tiny_config, **durable)
        resumed_tuner.run(num_rounds=3, resume_from=snapshot)
        assert [channel.export_state()["sequence"]
                for channel in resumed_tuner.topology.channels] == expected_sequences

    def test_resume_restores_every_tier_channel_position(self, vocab, tiny_config,
                                                         tmp_path):
        """N-tier trees snapshot one channel position per node per tier."""
        knobs = dict(participants_per_round=3, edge_tiers=(2, 2),
                     edge_latency_s=0.05)
        uninterrupted = build_constant_tuner(vocab, tiny_config, **knobs)
        uninterrupted.run(num_rounds=3)
        expected = [[channel.export_state()["sequence"] for channel in tier]
                    for tier in uninterrupted.topology.tier_channels]
        assert all(any(seq > 0 for seq in tier) for tier in expected)

        durable = dict(knobs, checkpoint_every=2,
                       checkpoint_dir=str(tmp_path / "tiers"))
        build_constant_tuner(vocab, tiny_config, **durable).run(num_rounds=2)
        snapshot = latest_checkpoint(str(tmp_path / "tiers"))
        resumed_tuner = build_constant_tuner(vocab, tiny_config, **durable)
        resumed_tuner.run(num_rounds=3, resume_from=snapshot)
        assert [[channel.export_state()["sequence"] for channel in tier]
                for tier in resumed_tuner.topology.tier_channels] == expected

    def test_legacy_two_argument_scheduler_still_runs(self, vocab, tiny_config):
        """Custom schedulers predating the durability layer keep working."""
        from repro.runtime import SyncScheduler

        class OldStyleScheduler(SyncScheduler):
            def round_results(self, tuner, num_rounds):  # no start_round
                for round_index in range(num_rounds):
                    round_result, _ = self.run_round(tuner, round_index)
                    yield round_result

        tuner = build_constant_tuner(vocab, tiny_config, participants_per_round=3)
        result = tuner.run(num_rounds=2, scheduler=OldStyleScheduler())
        assert len(result.rounds) == 2

    def test_async_restore_requires_loop_state(self, vocab, tiny_config):
        from repro.runtime import AsyncScheduler

        tuner = build_constant_tuner(vocab, tiny_config,
                                     **SCHEDULER_KNOBS["async"])
        scheduler = AsyncScheduler(buffer_size=2, concurrency=2)
        with pytest.raises(ValueError, match="restored"):
            next(scheduler.round_results(tuner, num_rounds=4, start_round=2))


class TestCheckpointRotation:
    def _complete_dir(self, root, round_index):
        path = root / f"round_{round_index:05d}"
        os.makedirs(path)
        (path / STATE_FILE).write_bytes(b"snapshot")
        return str(path)

    def test_prune_keeps_newest_complete_snapshots(self, tmp_path):
        from repro.runtime import prune_checkpoints

        for round_index in (2, 4, 6, 8):
            self._complete_dir(tmp_path, round_index)
        os.makedirs(tmp_path / "round_00005")  # torn: no completeness marker
        (tmp_path / "unrelated").mkdir()       # never touched

        removed = prune_checkpoints(str(tmp_path), keep_last=2)
        assert sorted(os.path.basename(p) for p in removed) == [
            "round_00002", "round_00004", "round_00005"]
        assert sorted(os.listdir(tmp_path)) == [
            "round_00006", "round_00008", "unrelated"]

    def test_prune_zero_keeps_everything(self, tmp_path):
        from repro.runtime import prune_checkpoints

        self._complete_dir(tmp_path, 2)
        assert prune_checkpoints(str(tmp_path), keep_last=0) == []
        assert prune_checkpoints(str(tmp_path / "missing"), keep_last=3) == []
        assert os.listdir(tmp_path) == ["round_00002"]

    def test_checkpointer_rotates_after_save(self, vocab, tiny_config, tmp_path):
        tuner = build_constant_tuner(
            vocab, tiny_config, participants_per_round=3, checkpoint_every=1,
            checkpoint_dir=str(tmp_path), checkpoint_keep_last=2)
        tuner.run(num_rounds=4)
        assert sorted(os.listdir(tmp_path)) == ["round_00003", "round_00004"]

    def test_rotated_run_still_resumes_bit_identically(self, vocab, tiny_config,
                                                       tmp_path):
        knobs = dict(participants_per_round=3, num_shards=2)
        expected_tuner = build_constant_tuner(vocab, tiny_config, **knobs)
        expected = expected_tuner.run(num_rounds=4)

        durable = dict(knobs, checkpoint_every=1, checkpoint_dir=str(tmp_path),
                       checkpoint_keep_last=1)
        build_constant_tuner(vocab, tiny_config, **durable).run(num_rounds=2)
        assert sorted(os.listdir(tmp_path)) == ["round_00002"]
        resumed_tuner = build_constant_tuner(vocab, tiny_config, **durable)
        resumed = resumed_tuner.run(num_rounds=4,
                                    resume_from=latest_checkpoint(str(tmp_path)))
        assert_run_results_equal(resumed, expected)
        assert_models_equal(resumed_tuner.server.global_model,
                            expected_tuner.server.global_model)
        assert sorted(os.listdir(tmp_path)) == ["round_00004"]

    def test_checkpointer_validates_keep_last(self, tmp_path):
        with pytest.raises(ValueError, match="keep_last"):
            RunCheckpointer(directory=str(tmp_path), every=1, keep_last=-1)


class TestDeltaCheckpoints:
    """Sparse-delta snapshot chains + the background writer.

    Every configuration must stay bit-identical to the plain full-snapshot
    path: the snapshot *encoding* is purely operational and may never change
    what a resumed run computes.
    """

    def _snapshot_files(self, root):
        return {name: sorted(os.listdir(os.path.join(root, name)))
                for name in sorted(os.listdir(root))
                if name.startswith("round_")}

    def test_full_every_k_layout(self, vocab, tiny_config, tmp_path):
        tuner = build_constant_tuner(
            vocab, tiny_config, participants_per_round=3, checkpoint_every=1,
            checkpoint_dir=str(tmp_path), checkpoint_delta_every=2)
        tuner.run(num_rounds=4)
        layout = self._snapshot_files(str(tmp_path))
        full = sorted([MODEL_FILE, STATE_FILE])
        delta = sorted([DELTA_BASE_FILE, MODEL_DELTA_FILE, STATE_FILE])
        # first save is always full; then up to delta_every=2 deltas between fulls
        assert layout == {"round_00001": full, "round_00002": delta,
                          "round_00003": delta, "round_00004": full}
        assert (tmp_path / "round_00002" / DELTA_BASE_FILE).read_text() == "round_00001"
        assert (tmp_path / "round_00003" / DELTA_BASE_FILE).read_text() == "round_00002"

    def test_chain_load_is_bit_identical_to_full_snapshots(self, vocab, tiny_config,
                                                           tmp_path):
        knobs = dict(participants_per_round=3, checkpoint_every=1)
        build_constant_tuner(vocab, tiny_config, checkpoint_dir=str(tmp_path / "full"),
                             **knobs).run(num_rounds=4)
        build_constant_tuner(vocab, tiny_config, checkpoint_dir=str(tmp_path / "delta"),
                             checkpoint_delta_every=3, **knobs).run(num_rounds=4)
        for round_index in (1, 2, 3, 4):
            name = f"round_{round_index:05d}"
            want = load_run_checkpoint(str(tmp_path / "full" / name))["model_state"]
            got = load_run_checkpoint(str(tmp_path / "delta" / name))["model_state"]
            assert set(got) == set(want)
            for key in want:
                assert got[key].dtype == want[key].dtype, key
                assert np.array_equal(got[key], want[key]), (name, key)

    @pytest.mark.parametrize("asynch", [False, True], ids=["sync", "async"])
    def test_resume_from_delta_matches_uninterrupted(self, vocab, tiny_config,
                                                     tmp_path, asynch):
        knobs = dict(participants_per_round=3)
        expected_tuner = build_constant_tuner(vocab, tiny_config, **knobs)
        expected = expected_tuner.run(num_rounds=4)

        durable = dict(knobs, checkpoint_every=1, checkpoint_dir=str(tmp_path),
                       checkpoint_delta_every=4, checkpoint_async=asynch)
        build_constant_tuner(vocab, tiny_config, **durable).run(num_rounds=2)
        snapshot = latest_checkpoint(str(tmp_path))
        # the interruption point is a delta snapshot, not a full one
        assert os.path.exists(os.path.join(snapshot, MODEL_DELTA_FILE))
        assert not os.path.exists(os.path.join(snapshot, MODEL_FILE))

        resumed_tuner = build_constant_tuner(vocab, tiny_config, **durable)
        resumed = resumed_tuner.run(num_rounds=4, resume_from=snapshot)
        assert_run_results_equal(resumed, expected)
        assert_models_equal(resumed_tuner.server.global_model,
                            expected_tuner.server.global_model)

    def test_resume_from_delta_with_wire_and_faults(self, vocab, tiny_config,
                                                    tmp_path):
        knobs = dict(participants_per_round=3, transport="wire",
                     streaming_aggregation=True, channel_loss_prob=0.2,
                     dropout_prob=0.2, straggler_prob=0.3)
        expected_tuner = build_constant_tuner(vocab, tiny_config, **knobs)
        expected = expected_tuner.run(num_rounds=4)

        durable = dict(knobs, checkpoint_every=1, checkpoint_dir=str(tmp_path),
                       checkpoint_delta_every=4, checkpoint_async=True)
        build_constant_tuner(vocab, tiny_config, **durable).run(num_rounds=2)
        snapshot = latest_checkpoint(str(tmp_path))
        assert os.path.exists(os.path.join(snapshot, MODEL_DELTA_FILE))

        resumed_tuner = build_constant_tuner(vocab, tiny_config, **durable)
        resumed = resumed_tuner.run(num_rounds=4, resume_from=snapshot)
        assert_run_results_equal(resumed, expected)
        assert_models_equal(resumed_tuner.server.global_model,
                            expected_tuner.server.global_model)

    def test_rotation_protects_delta_chain_bases(self, vocab, tiny_config, tmp_path):
        tuner = build_constant_tuner(
            vocab, tiny_config, participants_per_round=3, checkpoint_every=1,
            checkpoint_dir=str(tmp_path), checkpoint_keep_last=1,
            checkpoint_delta_every=8)
        tuner.run(num_rounds=3)
        # round_00003 is a delta onto round_00002, itself a delta onto the
        # full round_00001: keep_last=1 must keep the whole resumable chain.
        assert sorted(os.listdir(tmp_path)) == [
            "round_00001", "round_00002", "round_00003"]
        state = load_run_checkpoint(str(tmp_path / "round_00003"))
        assert state["next_round"] == 3

    def test_load_fails_when_chain_base_is_missing(self, vocab, tiny_config,
                                                   tmp_path):
        build_constant_tuner(
            vocab, tiny_config, participants_per_round=3, checkpoint_every=1,
            checkpoint_dir=str(tmp_path), checkpoint_delta_every=8,
        ).run(num_rounds=2)
        os.remove(tmp_path / "round_00001" / STATE_FILE)  # now torn
        with pytest.raises(FileNotFoundError, match="base"):
            load_run_checkpoint(str(tmp_path / "round_00002"))

    def test_writer_error_surfaces_on_round_loop(self, vocab, tiny_config, tmp_path):
        checkpointer = RunCheckpointer(directory=str(tmp_path), every=1,
                                       background=True)
        tuner = build_constant_tuner(vocab, tiny_config, participants_per_round=3)
        boom = RuntimeError("disk gone")

        checkpointer.save(tuner, _DummyScheduler(), None, None, [])
        checkpointer.finish()  # first write lands fine

        def explode(*args, **kwargs):
            raise boom

        import repro.runtime.checkpoint as ckpt_mod
        original = ckpt_mod.write_run_checkpoint
        ckpt_mod.write_run_checkpoint = explode
        try:
            checkpointer.save(tuner, _DummyScheduler(), None, None, [])
            with pytest.raises(RuntimeError, match="disk gone"):
                checkpointer.finish()
        finally:
            ckpt_mod.write_run_checkpoint = original

    def test_validates_delta_every(self, tmp_path):
        with pytest.raises(ValueError, match="delta_every"):
            RunCheckpointer(directory=str(tmp_path), every=1, delta_every=-1)
        from repro.federated import RunConfig
        with pytest.raises(ValueError, match="checkpoint_delta_every"):
            RunConfig(checkpoint_delta_every=-1)


class _DummyScheduler:
    name = "sync"

    def export_state(self):
        return None
