"""Tests of the top-level public API surface."""

import importlib


import repro


class TestPublicAPI:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    def test_subpackages_importable(self):
        for module in ("autograd", "models", "quantization", "data", "federated",
                       "systems", "core", "baselines", "metrics", "analysis"):
            imported = importlib.import_module(f"repro.{module}")
            assert imported is not None

    def test_subpackage_all_exports_resolve(self):
        for module_name in ("repro.autograd", "repro.models", "repro.data", "repro.core",
                            "repro.federated", "repro.systems", "repro.quantization",
                            "repro.baselines", "repro.metrics", "repro.analysis"):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"

    def test_method_names_are_distinct(self):
        names = {repro.FluxFineTuner.name, repro.FMDFineTuner.name,
                 repro.FMQFineTuner.name, repro.FMESFineTuner.name}
        assert names == {"flux", "fmd", "fmq", "fmes"}

    def test_quickstart_docstring_snippet_runs(self):
        """The README/package-docstring quickstart must stay executable."""
        config = repro.tiny_moe(vocab_size=256)   # match the default dataset vocabulary
        dataset = repro.make_gsm8k_like(num_samples=60, seed=0)
        train, test = dataset.split()
        shards = repro.partition_dirichlet(train, num_clients=2, alpha=0.5)
        participants = [
            repro.Participant(i, train.subset(shard),
                              resources=repro.ParticipantResources(max_experts=8,
                                                                   max_tuning_experts=4))
            for i, shard in enumerate(shards)
        ]
        server = repro.ParameterServer(repro.MoETransformer(config))
        tuner = repro.FluxFineTuner(server, participants, test,
                                    config=repro.RunConfig(batch_size=8, max_local_batches=1,
                                                           eval_max_samples=12))
        result = tuner.run(num_rounds=1)
        assert len(result.tracker.history) == 1
