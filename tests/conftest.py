"""Shared fixtures for the test suite.

Everything is deliberately tiny (16-dim model, <100-token vocabulary, a few
dozen samples) so the whole suite runs in seconds while still exercising the
real code paths: genuine backprop, routing, merging and federated rounds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import Vocabulary, make_batches, make_gsm8k_like
from repro.models import MoEModelConfig, MoETransformer, tiny_moe


@pytest.fixture(scope="session")
def vocab() -> Vocabulary:
    return Vocabulary(size=96, num_topics=4)


@pytest.fixture(scope="session")
def tiny_config(vocab) -> MoEModelConfig:
    return tiny_moe(vocab_size=vocab.size)


@pytest.fixture()
def tiny_model(tiny_config) -> MoETransformer:
    return MoETransformer(tiny_config)


@pytest.fixture(scope="session")
def gsm_dataset(vocab):
    return make_gsm8k_like(vocab=vocab, num_samples=80, seed=7)


@pytest.fixture(scope="session")
def gsm_split(gsm_dataset):
    return gsm_dataset.split(seed=7)


@pytest.fixture()
def gsm_batches(gsm_dataset, vocab, tiny_config):
    return make_batches(gsm_dataset.samples[:24], batch_size=8, vocab=vocab,
                        shuffle=False, max_seq_len=tiny_config.max_seq_len)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
