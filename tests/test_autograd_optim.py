"""Unit tests for optimisers and gradient utilities."""

import numpy as np
import pytest

from repro.autograd import (
    SGD,
    Adam,
    AdamW,
    Linear,
    Parameter,
    Tensor,
    apply_gradients,
    clip_grad_norm,
    collect_gradients,
    flatten_parameters,
    gradient_norm,
    parameter_delta,
)
from repro.autograd import functional as F


def quadratic_problem(optimizer_factory, steps=200):
    """Minimise ||x - target||^2 and return the final distance."""
    target = np.array([1.0, -2.0, 3.0])
    param = Parameter(np.zeros(3))
    optimizer = optimizer_factory([param])
    for _ in range(steps):
        optimizer.zero_grad()
        loss = ((param - Tensor(target)) ** 2).sum()
        loss.backward()
        optimizer.step()
    return float(np.abs(param.data - target).max())


class TestOptimizers:
    def test_sgd_converges(self):
        assert quadratic_problem(lambda p: SGD(p, lr=0.1)) < 1e-3

    def test_sgd_momentum_converges(self):
        assert quadratic_problem(lambda p: SGD(p, lr=0.05, momentum=0.9)) < 1e-3

    def test_adam_converges(self):
        assert quadratic_problem(lambda p: Adam(p, lr=0.1)) < 1e-2

    def test_adamw_converges(self):
        assert quadratic_problem(lambda p: AdamW(p, lr=0.1, weight_decay=1e-3)) < 5e-2

    def test_weight_decay_shrinks_parameters(self):
        param = Parameter(np.ones(4) * 10.0)
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        param.grad = np.zeros(4)
        optimizer.step()
        assert np.all(param.data < 10.0)

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_learning_rate_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(2))], lr=0.0)

    def test_frozen_parameters_not_updated(self):
        param = Parameter(np.ones(3))
        param.requires_grad = False
        optimizer = SGD([param], lr=1.0)
        param.grad = np.ones(3)
        optimizer.step()
        assert np.allclose(param.data, 1.0)

    def test_none_gradients_are_skipped(self):
        param = Parameter(np.ones(3))
        optimizer = Adam([param], lr=1.0)
        optimizer.step()  # no gradient set; must be a no-op
        assert np.allclose(param.data, 1.0)

    def test_zero_grad_clears(self):
        param = Parameter(np.ones(3))
        param.grad = np.ones(3)
        SGD([param], lr=0.1).zero_grad()
        assert param.grad is None

    def test_training_a_small_classifier(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((64, 4))
        y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
        layer = Linear(4, 2, rng=rng)
        optimizer = Adam(layer.parameters(), lr=0.05)
        first_loss = None
        for _ in range(60):
            optimizer.zero_grad()
            loss = F.cross_entropy(layer(Tensor(x)), y)
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first_loss * 0.5


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        params = [Parameter(np.zeros(3)) for _ in range(2)]
        for p in params:
            p.grad = np.ones(3) * 10.0
        before = clip_grad_norm(params, max_norm=1.0)
        after = float(np.sqrt(sum((p.grad ** 2).sum() for p in params)))
        assert before > 1.0
        assert after == pytest.approx(1.0, rel=1e-6)

    def test_no_clip_when_below_threshold(self):
        param = Parameter(np.zeros(3))
        param.grad = np.ones(3) * 0.1
        clip_grad_norm([param], max_norm=10.0)
        assert np.allclose(param.grad, 0.1)


class TestGradUtils:
    def _model_with_grads(self):
        layer = Linear(3, 2)
        layer(Tensor(np.ones((4, 3)))).sum().backward()
        return layer

    def test_gradient_norm_positive(self):
        layer = self._model_with_grads()
        assert gradient_norm(layer) > 0

    def test_collect_and_apply_gradients(self):
        layer = self._model_with_grads()
        grads = collect_gradients(layer)
        assert set(grads) == {"weight", "bias"}
        other = Linear(3, 2)
        apply_gradients(other, grads)
        assert np.allclose(other.weight.grad, grads["weight"])

    def test_apply_gradients_shape_mismatch(self):
        other = Linear(3, 2)
        with pytest.raises(ValueError):
            apply_gradients(other, {"weight": np.zeros((1, 1))})

    def test_flatten_parameters(self):
        layer = Linear(3, 2)
        flat = flatten_parameters(layer)
        assert flat.shape == (3 * 2 + 2,)

    def test_flatten_trainable_only(self):
        layer = Linear(3, 2)
        layer.bias.requires_grad = False
        flat = flatten_parameters(layer, trainable_only=True)
        assert flat.shape == (6,)

    def test_parameter_delta(self):
        before = {"a": np.zeros(3)}
        after = {"a": np.ones(3), "b": np.ones(2)}
        delta = parameter_delta(before, after)
        assert set(delta) == {"a"}
        assert np.allclose(delta["a"], 1.0)
