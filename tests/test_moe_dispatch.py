"""Equivalence and dtype tests for the batched MoE dispatch fast path.

The batched grouped-GEMM dispatch reproduces the legacy per-expert loop
bit-for-bit in float64 (outputs, input gradients and every parameter
gradient): gathers, products and the combine accumulate in exactly the same
order.  The single permitted deviation is ≤2 ULP on rows of experts that
received exactly one token, where BLAS dispatches a gemv kernel for the
loop's ``(1, d) @ (d, f)`` product but a gemm row inside the grouped batch —
``_assert_bit_identical`` pins that bound.  float32 must be allclose to
float64, and a float32 end-to-end training run must converge to the float64
trajectory within tolerance.
"""

import numpy as np
import pytest

from repro.autograd import (
    SGD,
    Adam,
    Tensor,
    default_dtype,
    expand_rows,
    get_default_dtype,
    index_add,
    place_rows,
    scatter_rows,
    set_default_dtype,
    take_rows,
)
from repro.models import ExpertFFN, ExpertRemap, MoELayer, MoETransformer
from repro.models.lora import apply_lora_to_experts
from repro.models.presets import tiny_moe
from repro.quantization import quantize_array


def _assert_bit_identical(a, b, context=""):
    """Exact equality, tolerating a few ULP (of the row magnitude) on rows of
    experts that received a single token, where BLAS selects a gemv kernel in
    the loop path but a gemm row inside the grouped batch."""
    a, b = np.asarray(a), np.asarray(b)
    if np.array_equal(a, b):
        return
    scale = max(float(np.max(np.abs(a))), 1.0)
    max_diff = float(np.max(np.abs(a - b)))
    assert max_diff <= 8 * np.finfo(a.dtype).eps * scale, (context, max_diff)


def _layer_pair(dispatch_a="loop", dispatch_b="batched", dtype="float64", **kwargs):
    defaults = dict(d_model=16, d_ff=24, num_experts=6, top_k=2)
    defaults.update(kwargs)
    with default_dtype(dtype):
        a = MoELayer(rng=np.random.default_rng(0), dispatch=dispatch_a, **defaults)
        b = MoELayer(rng=np.random.default_rng(0), dispatch=dispatch_b, **defaults)
    return a, b


def _run(layer, x, sample_ids=None):
    inp = Tensor(x, requires_grad=True)
    out = layer(inp, sample_ids=sample_ids)
    out.sum().backward()
    grads = {name: (None if p.grad is None else p.grad.copy())
             for name, p in layer.named_parameters()}
    layer.zero_grad()
    return out.data, inp.grad, grads


class TestDispatchEquivalence:
    @pytest.mark.parametrize("activation", ["silu", "gelu", "relu"])
    def test_bit_identical_float64(self, activation):
        a, b = _layer_pair(activation=activation)
        x = np.random.default_rng(1).standard_normal((3, 7, 16))
        out_a, gx_a, gp_a = _run(a, x, sample_ids=np.arange(3))
        out_b, gx_b, gp_b = _run(b, x, sample_ids=np.arange(3))
        _assert_bit_identical(out_a, out_b)
        _assert_bit_identical(gx_a, gx_b)
        for name in gp_a:
            if gp_a[name] is None:
                assert gp_b[name] is None
            else:
                _assert_bit_identical(gp_a[name], gp_b[name], name)

    def test_bit_identical_with_shared_experts(self):
        a, b = _layer_pair(num_shared_experts=1)
        x = np.random.default_rng(2).standard_normal((2, 5, 16))
        out_a, gx_a, _ = _run(a, x)
        out_b, gx_b, _ = _run(b, x)
        _assert_bit_identical(out_a, out_b)
        _assert_bit_identical(gx_a, gx_b)

    def test_bit_identical_with_compact_remap(self):
        a, b = _layer_pair(num_experts=4)
        remap, _, _ = ExpertRemap.from_clusters(4, tuning_experts=[0], clusters=[[1, 2, 3]])
        for layer in (a, b):
            kept = ExpertFFN(16, 24, rng=np.random.default_rng(7))
            kept.load_state(layer.experts[0].state())
            merged = ExpertFFN.merge([layer.experts[i] for i in (1, 2, 3)], [1, 1, 1],
                                     d_model=16, d_ff=24)
            layer.set_compact_experts([kept, merged], remap)
        x = np.random.default_rng(3).standard_normal((2, 6, 16))
        out_a, gx_a, _ = _run(a, x)
        out_b, gx_b, _ = _run(b, x)
        _assert_bit_identical(out_a, out_b)
        _assert_bit_identical(gx_a, gx_b)

    def test_float32_allclose_to_float64(self):
        a64, _ = _layer_pair("loop", "loop")
        b32, _ = _layer_pair("batched", "batched", dtype="float32")
        x = np.random.default_rng(4).standard_normal((2, 8, 16))
        out_a, _, _ = _run(a64, x)
        out_b, _, _ = _run(b32, x.astype(np.float32))
        assert out_b.dtype == np.float32
        assert np.allclose(out_a, out_b, rtol=1e-4, atol=1e-5)

    def test_routing_records_identical_across_dispatch(self):
        a, b = _layer_pair()
        x = np.random.default_rng(5).standard_normal((4, 6, 16))
        mask = np.ones((4, 6), dtype=bool)
        mask[:, 4:] = False
        for layer in (a, b):
            layer(Tensor(x), sample_ids=np.array([9, 8, 7, 6]), token_mask=mask)
        ra, rb = a.last_routing, b.last_routing
        assert np.array_equal(ra.token_counts, rb.token_counts)
        assert np.allclose(ra.gate_weight_sums, rb.gate_weight_sums)
        assert ra.sample_ids == rb.sample_ids
        assert ra.total_tokens == rb.total_tokens == 16

    def test_gradients_only_reach_routed_experts(self):
        _, layer = _layer_pair(num_experts=8)
        x = np.random.default_rng(6).standard_normal((1, 4, 16))
        inp = Tensor(x, requires_grad=True)
        layer(inp).sum().backward()
        counts = layer.last_routing.token_counts
        for idx, expert in enumerate(layer.experts):
            touched = any(p.grad is not None for p in expert.parameters())
            assert touched == (counts[idx] > 0)

    def test_empty_input_matches_loop_path(self):
        a, b = _layer_pair()
        x = np.zeros((0, 5, 16))
        out_a = a(Tensor(x))
        out_b = b(Tensor(x))
        assert out_a.shape == out_b.shape == (0, 5, 16)

    def test_scratch_buffers_not_pickled(self):
        import pickle
        _, layer = _layer_pair()
        x = np.random.default_rng(0).standard_normal((2, 4, 16))
        inp = Tensor(x, requires_grad=True)
        layer(inp).sum().backward()
        assert layer._bwd_scratch  # populated by the fused backward
        clone = pickle.loads(pickle.dumps(layer))
        assert clone._bwd_scratch == {}

    def test_invalid_dispatch_rejected(self):
        with pytest.raises(ValueError):
            MoELayer(8, 8, 4, 2, dispatch="vectorised")

    def test_lora_wrapped_experts_fall_back_to_loop(self):
        config = tiny_moe()
        model = MoETransformer(config)
        apply_lora_to_experts(model, rank=2, seed=0)
        assert not model.blocks[0].moe._can_batch()
        ids = np.random.default_rng(0).integers(0, config.vocab_size, size=(2, 8))
        loss = model.compute_loss(ids)
        loss.backward()
        assert np.isfinite(loss.item())


class TestSparseDispatch:
    """The zero-skipping sparse path vs the dense paths on sparsified weights."""

    def _sparsified_pair(self, dispatch_a="batched", dtype="float64",
                         density=0.25, bits=2, **kwargs):
        a, b = _layer_pair(dispatch_a, "sparse", dtype=dtype, **kwargs)
        realised_a = a.sparsify_experts(density, bits=bits)
        realised_b = b.sparsify_experts(density, bits=bits)
        assert realised_a == realised_b  # same seed, same deterministic prune
        return a, b

    @pytest.mark.parametrize("activation", ["silu", "gelu", "relu"])
    def test_sparse_bit_identical_to_batched(self, activation):
        a, b = self._sparsified_pair(activation=activation)
        x = np.random.default_rng(11).standard_normal((3, 7, 16))
        out_a, gx_a, gp_a = _run(a, x, sample_ids=np.arange(3))
        out_b, gx_b, gp_b = _run(b, x, sample_ids=np.arange(3))
        _assert_bit_identical(out_a, out_b)
        _assert_bit_identical(gx_a, gx_b)
        for name in gp_a:
            if gp_a[name] is None:
                assert gp_b[name] is None
            else:
                _assert_bit_identical(gp_a[name], gp_b[name], name)

    def test_sparse_bit_identical_to_loop(self):
        a, b = self._sparsified_pair(dispatch_a="loop")
        x = np.random.default_rng(12).standard_normal((2, 6, 16))
        out_a, gx_a, _ = _run(a, x)
        out_b, gx_b, _ = _run(b, x)
        _assert_bit_identical(out_a, out_b)
        _assert_bit_identical(gx_a, gx_b)

    def test_sparse_bit_identical_float32(self):
        a, b = self._sparsified_pair(dtype="float32")
        x = np.random.default_rng(13).standard_normal((2, 5, 16)).astype(np.float32)
        out_a, gx_a, _ = _run(a, x)
        out_b, gx_b, _ = _run(b, x)
        assert out_b.dtype == np.float32
        _assert_bit_identical(out_a, out_b)
        _assert_bit_identical(gx_a, gx_b)

    def test_dense_weights_fall_back_to_batched(self):
        """At full density the sparse plan declines and the dense path runs."""
        a, b = _layer_pair("batched", "sparse")
        gate_params = [e.w_gate.weight for e in b.experts]
        up_params = [e.w_up.weight for e in b.experts]
        assert b._sparse_plan(gate_params, up_params) is None
        x = np.random.default_rng(14).standard_normal((2, 4, 16))
        out_a, gx_a, _ = _run(a, x)
        out_b, gx_b, _ = _run(b, x)
        _assert_bit_identical(out_a, out_b)
        _assert_bit_identical(gx_a, gx_b)

    def test_sparsify_returns_realised_density(self):
        _, layer = _layer_pair()
        realised = layer.sparsify_experts(0.25)
        assert realised == pytest.approx(np.ceil(0.25 * 24) / 24)

    def test_sparsify_validates_density(self):
        _, layer = _layer_pair()
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                layer.sparsify_experts(bad)

    def test_quantization_preserves_dead_channels(self):
        """Zeroed channels survive the fake-quantization round trip exactly."""
        _, layer = _layer_pair()
        from repro.models.experts import sparsify_expert

        expert = layer.experts[0]
        kept = sparsify_expert(expert, 0.25, bits=2)
        dead = np.setdiff1d(np.arange(24), kept)
        assert dead.size == 24 - kept.size
        assert not expert.w_gate.weight.data[dead].any()
        assert not expert.w_up.weight.data[dead].any()
        assert not expert.w_down.weight.data[:, dead].any()
        # and the kept channels are non-trivially quantized, not wiped
        assert expert.w_gate.weight.data[kept].any()

    def test_dead_channels_stay_dead_after_training_step(self):
        from repro.models.experts import sparsify_expert

        _, layer = _layer_pair()
        kept_per_expert = [
            np.setdiff1d(np.arange(24), sparsify_expert(e, 0.25, bits=2))
            for e in layer.experts
        ]
        x = np.random.default_rng(15).standard_normal((2, 6, 16))
        optimizer = Adam(list(layer.parameters()), lr=1e-2)
        for _ in range(3):
            out = layer(Tensor(x, requires_grad=True))
            out.sum().backward()
            optimizer.step()
            optimizer.zero_grad()
        for expert, dead in zip(layer.experts, kept_per_expert):
            assert not expert.w_gate.weight.data[dead].any()
            assert not expert.w_up.weight.data[dead].any()
            assert not expert.w_down.weight.data[:, dead].any()

    def test_model_config_accepts_sparse_dispatch(self):
        config = tiny_moe(dispatch="sparse")
        model = MoETransformer(config)
        for layer in model.moe_layers():
            assert layer.dispatch == "sparse"
        ids = np.random.default_rng(0).integers(0, config.vocab_size, size=(2, 8))
        loss = model.compute_loss(ids)
        loss.backward()
        assert np.isfinite(loss.item())


class TestZeroGradientStep:
    def test_local_finetune_survives_starved_trainable_expert(self):
        """A batch that routes no token to any trainable expert is a
        legitimate zero-gradient step, not a crash."""
        from repro.data import make_gsm8k_like
        from repro.data.loader import Batch
        from repro.federated.client import Participant

        config = tiny_moe(vocab_size=32)
        model = MoETransformer(config)

        # Pin every layer's routing onto experts 2 and 3 so expert 0 (the
        # only trainable one) never receives a token.
        def pinned_gate(x, with_probs=True):
            num_tokens = x.shape[0]
            top_idx = np.tile(np.array([2, 3]), (num_tokens, 1))
            weights = Tensor(np.full((num_tokens, 2), 0.5, dtype=x.data.dtype))
            return top_idx, weights, None

        for layer in model.moe_layers():
            layer.gate.forward = pinned_gate
        ids = np.random.default_rng(0).integers(0, 32, size=(2, 8))
        labels = np.roll(ids, -1, axis=1)
        batch = Batch(input_ids=ids, labels=labels,
                      attention_mask=np.ones_like(ids, dtype=bool),
                      sample_ids=np.array([0, 1]), samples=[])
        participant = Participant(0, dataset=make_gsm8k_like(num_samples=4))
        result = participant.local_finetune(model, [batch],
                                            trainable_experts={(0, 0), (1, 0)})
        assert result.num_batches == 1
        assert np.isfinite(result.mean_loss)
        assert result.expert_grad_norms == {}


class TestFloat32Convergence:
    def _train(self, dtype, steps=25):
        config = tiny_moe(dtype=dtype)
        model = MoETransformer(config)
        ids = np.random.default_rng(0).integers(0, config.vocab_size, size=(8, 16))
        optimizer = Adam(list(model.parameters()), lr=3e-3)
        losses = []
        for _ in range(steps):
            loss = model.compute_loss(ids)
            loss.backward()
            optimizer.step()
            optimizer.zero_grad()
            losses.append(loss.item())
        return losses

    def test_float32_round_converges_like_float64(self):
        l64 = self._train("float64")
        l32 = self._train("float32")
        assert l64[-1] < l64[0]
        assert l32[-1] < l32[0]
        # same trajectory within a few percent, same final neighbourhood
        assert abs(l32[0] - l64[0]) / l64[0] < 1e-3
        assert abs(l32[-1] - l64[-1]) / l64[-1] < 0.05


class TestDtypeThreading:
    def test_model_dtype_float32_end_to_end(self):
        config = tiny_moe(dtype="float32")
        model = MoETransformer(config)
        assert all(p.data.dtype == np.float32 for p in model.parameters())
        ids = np.random.default_rng(0).integers(0, config.vocab_size, size=(2, 8))
        loss = model.compute_loss(ids)
        assert loss.data.dtype == np.float32
        loss.backward()
        for param in model.parameters():
            if param.grad is not None:
                assert param.grad.dtype == np.float32

    def test_float32_init_is_rounded_float64_init(self):
        m64 = MoETransformer(tiny_moe(dtype="float64"))
        m32 = MoETransformer(tiny_moe(dtype="float32"))
        s64, s32 = m64.state_dict(), m32.state_dict()
        for name in s64:
            assert s32[name].dtype == np.float32
            assert np.array_equal(s32[name], s64[name].astype(np.float32)), name

    def test_default_dtype_context_restores(self):
        before = get_default_dtype()
        with default_dtype("float32"):
            assert get_default_dtype() == np.float32
            assert Tensor.zeros(3).data.dtype == np.float32
        assert get_default_dtype() == before

    def test_set_default_dtype_validates(self):
        with pytest.raises(ValueError):
            set_default_dtype("float16")
        with pytest.raises(ValueError):
            default_dtype("int32")

    def test_config_validates_dtype_and_dispatch(self):
        with pytest.raises(ValueError):
            tiny_moe(dtype="float16")
        with pytest.raises(ValueError):
            tiny_moe(dispatch="grouped")

    def test_quantizer_preserves_dtype(self):
        weights32 = np.random.default_rng(0).standard_normal((4, 8)).astype(np.float32)
        out32 = quantize_array(weights32, 8).dequantize()
        assert out32.dtype == np.float32
        out64 = quantize_array(weights32.astype(np.float64), 8).dequantize()
        assert out64.dtype == np.float64
        assert np.allclose(out32, out64, atol=1e-6)


class TestScatterGatherOps:
    def test_index_add_matches_scatter_rows(self):
        rows = np.array([0, 2, 2, 1])
        src_data = np.random.default_rng(0).standard_normal((4, 3))
        src_a = Tensor(src_data, requires_grad=True)
        src_b = Tensor(src_data, requires_grad=True)
        out_a = scatter_rows(src_a, rows, 3)
        out_b = index_add(Tensor.zeros(3, 3), rows, src_b)
        assert np.array_equal(out_a.data, out_b.data)
        grad = np.random.default_rng(1).standard_normal((3, 3))
        out_a.backward(grad.copy())
        out_b.backward(grad.copy())
        assert np.array_equal(src_a.grad, src_b.grad)

    def test_index_add_validates_rows(self):
        with pytest.raises(ValueError):
            index_add(Tensor.zeros(3, 2), np.array([[0]]), Tensor.zeros(1, 2))
        with pytest.raises(ValueError):
            index_add(Tensor.zeros(3, 2), np.array([0]), Tensor.zeros(1, 3))

    def test_take_place_roundtrip_gradients(self):
        perm = np.array([3, 0, 2, 1])
        src = Tensor(np.arange(8.0).reshape(4, 2), requires_grad=True)
        taken = take_rows(src, perm)
        assert np.array_equal(taken.data, src.data[perm])
        taken.sum().backward()
        assert np.array_equal(src.grad, np.ones((4, 2)))
        src.zero_grad()
        placed = place_rows(src, perm, 6)
        assert np.array_equal(placed.data[perm], src.data)
        assert np.array_equal(placed.data[[4, 5]], np.zeros((2, 2)))
        grad = np.random.default_rng(0).standard_normal((6, 2))
        placed.backward(grad)
        assert np.array_equal(src.grad, grad[perm])

    def test_expand_rows_gradient_sums_repeats(self):
        src = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        out = expand_rows(src, 2)
        assert np.array_equal(out.data, np.repeat(src.data, 2, axis=0))
        grad = np.random.default_rng(0).standard_normal((6, 2))
        out.backward(grad)
        assert np.allclose(src.grad, grad.reshape(3, 2, 2).sum(axis=1))
        with pytest.raises(ValueError):
            expand_rows(src, 0)


class TestFusedOptimizers:
    """The in-place fused updates must match the reference formulas exactly."""

    def test_sgd_matches_reference(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal(5)
        grad = rng.standard_normal(5)
        from repro.autograd import Parameter
        param = Parameter(data.copy())
        param.grad = grad.copy()
        opt = SGD([param], lr=0.1, momentum=0.9, weight_decay=0.01)
        opt.step()
        g = grad + 0.01 * data
        expected = data - 0.1 * g  # first step: velocity == g
        assert np.array_equal(param.data, expected)

    def test_adam_matches_reference(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal(5)
        grad = rng.standard_normal(5)
        from repro.autograd import Parameter
        param = Parameter(data.copy())
        param.grad = grad.copy()
        opt = Adam([param], lr=0.01)
        opt.step()
        m = 0.1 * grad
        v = 0.001 * grad ** 2
        m_hat = m / (1 - 0.9)
        v_hat = v / (1 - 0.999)
        expected = data - 0.01 * m_hat / (np.sqrt(v_hat) + 1e-8)
        assert np.allclose(param.data, expected, rtol=0, atol=1e-15)

    def test_step_allocates_into_scratch(self):
        from repro.autograd import Parameter
        param = Parameter(np.ones(4))
        param.grad = np.ones(4)
        opt = Adam([param], lr=0.01)
        opt.step()
        scratch_ids = {id(buf) for buf in opt._scratch.values()}
        param.grad = np.full(4, 2.0)
        opt.step()
        assert {id(buf) for buf in opt._scratch.values()} == scratch_ids


class TestStackedWeightHelpers:
    def test_expert_weight_matrix_matches_weight_vectors(self):
        layer = MoELayer(8, 12, 4, 2, rng=np.random.default_rng(0))
        matrix = layer.expert_weight_matrix()
        reference = np.stack([e.weight_vector() for e in layer.experts])
        assert np.array_equal(matrix, reference)

    def test_stacked_expert_weights_shapes(self):
        layer = MoELayer(8, 12, 4, 2, rng=np.random.default_rng(0))
        stacked = layer.stacked_expert_weights()
        assert stacked["w_gate"].shape == (4, 12, 8)
        assert stacked["w_up"].shape == (4, 12, 8)
        assert stacked["w_down"].shape == (4, 8, 12)

    def test_merge_from_stacked_matches_legacy(self):
        experts = [ExpertFFN(8, 12, rng=np.random.default_rng(i)) for i in range(3)]
        weights = [2.0, 1.0, 1.0]
        legacy = ExpertFFN.merge(experts, weights, d_model=8, d_ff=12)
        from repro.models.experts import stack_expert_weights
        stacked = stack_expert_weights(experts)
        merged = ExpertFFN.merge(experts, weights, d_model=8, d_ff=12, stacked=stacked)
        assert np.array_equal(legacy.weight_vector(), merged.weight_vector())

    def test_merge_preserves_float32_dtype(self):
        with default_dtype("float32"):
            experts = [ExpertFFN(8, 12, rng=np.random.default_rng(i)) for i in range(2)]
        merged = ExpertFFN.merge(experts, [1.0, 1.0], d_model=8, d_ff=12)
        assert merged.w_gate.weight.data.dtype == np.float32
        assert merged.w_down.weight.data.dtype == np.float32

    def test_merge_rejects_mismatched_stack(self):
        experts = [ExpertFFN(8, 12, rng=np.random.default_rng(i)) for i in range(2)]
        from repro.models.experts import stack_expert_weights
        stacked = stack_expert_weights(experts + [ExpertFFN(8, 12)])
        with pytest.raises(ValueError):
            ExpertFFN.merge(experts, [1.0, 1.0], d_model=8, d_ff=12, stacked=stacked)
