"""Tests for the Flux fine-tuner, the three baselines and their interplay."""

import numpy as np
import pytest

from repro.baselines import (
    FMDFineTuner,
    FMESFineTuner,
    FMQFineTuner,
    build_selected_model,
    expert_updates_from_model,
    select_top_activated,
)
from repro.analysis import profile_activation
from repro.core import FluxConfig, FluxFineTuner
from repro.data import make_gsm8k_like, partition_dirichlet
from repro.federated import (
    ParameterServer,
    Participant,
    ParticipantResources,
    RunConfig,
)
from repro.federated.client import LocalTrainResult
from repro.models import MoETransformer
from repro.models.presets import ARCHITECTURE_DESCRIPTORS
from repro.systems import CONSUMER_GPU, CostModel, MemoryModel


@pytest.fixture()
def federation(vocab, tiny_config):
    """A small ready-to-run federation shared by the method tests."""
    dataset = make_gsm8k_like(vocab=vocab, num_samples=90, seed=11)
    train, test = dataset.split(seed=11)
    shards = partition_dirichlet(train, 3, alpha=0.5, seed=2)
    participants = [
        Participant(i, train.subset(shard),
                    resources=ParticipantResources(max_experts=6, max_tuning_experts=3), seed=i)
        for i, shard in enumerate(shards)
    ]
    memory = MemoryModel(ARCHITECTURE_DESCRIPTORS["llama-moe"])
    cost_models = {p.participant_id: CostModel(CONSUMER_GPU, memory) for p in participants}
    config = RunConfig(batch_size=8, max_local_batches=2, learning_rate=5e-3,
                       eval_max_samples=16, seed=0)
    return participants, test, cost_models, config


def fresh_server(tiny_config):
    return ParameterServer(MoETransformer(tiny_config))


class TestBaselineHelpers:
    def test_expert_updates_cover_all_experts(self, tiny_model):
        result = LocalTrainResult(mean_loss=1.0, num_batches=1, num_tokens=10, num_samples=4)
        updates = expert_updates_from_model(0, tiny_model, result)
        assert len(updates) == sum(tiny_model.experts_per_layer())

    def test_expert_updates_subset_and_quantized(self, tiny_model):
        result = LocalTrainResult(mean_loss=1.0, num_batches=1, num_tokens=10, num_samples=4)
        updates = expert_updates_from_model(0, tiny_model, result, expert_keys=[(0, 0)],
                                            quantize_bits=4)
        assert len(updates) == 1
        original = tiny_model.expert_state(0, 0)["w_gate"]
        assert not np.allclose(updates[0].state["w_gate"], original)

    def test_select_top_activated(self, tiny_model, gsm_batches):
        profile = profile_activation(tiny_model, gsm_batches)
        selected = select_top_activated(profile, 3)
        assert len(selected) == 3
        frequencies = {key: profile.frequencies[key[0]][key[1]] for key in selected}
        flat = np.concatenate(profile.frequencies)
        assert min(frequencies.values()) >= np.sort(flat)[-4]

    def test_build_selected_model_skips_dropped_experts(self, tiny_model, gsm_batches):
        profile = profile_activation(tiny_model, gsm_batches)
        selected = select_top_activated(profile, 2)
        compact, slot_map = build_selected_model(tiny_model, selected)
        assert len(slot_map) == 2
        # every layer keeps its selected experts plus one zero "skip" expert
        for layer, count in enumerate(compact.local_experts_per_layer()):
            kept = len([k for k in selected if k[0] == layer])
            assert count == kept + 1
        batch = gsm_batches[0]
        loss = compact.compute_loss(batch.input_ids, labels=batch.labels,
                                    attention_mask=batch.attention_mask)
        assert np.isfinite(loss.item())


class TestBaselineRounds:
    def test_fmd_round_trains_all_experts_and_pays_offloading(self, federation, tiny_config):
        participants, test, cost_models, config = federation
        tuner = FMDFineTuner(fresh_server(tiny_config), participants, test,
                             cost_models=cost_models, config=config)
        round_result, results = tuner.run_round(0)
        one = next(iter(results.values()))
        assert len(one.updates) == sum(tiny_config.experts_per_layer())
        assert one.breakdown.offloading > 0
        assert round_result.metric_value >= 0

    def test_fmq_round_quantizes_and_is_quicker_than_fmd(self, federation, tiny_config):
        participants, test, cost_models, config = federation
        fmq = FMQFineTuner(fresh_server(tiny_config), participants, test,
                           cost_models=cost_models, config=config)
        fmd = FMDFineTuner(fresh_server(tiny_config), participants, test,
                           cost_models=cost_models, config=config)
        fmq_round, fmq_results = fmq.run_round(0)
        fmd_round, _ = fmd.run_round(0)
        assert fmq_round.round_duration < fmd_round.round_duration
        assert next(iter(fmq_results.values())).breakdown.quantization > 0

    def test_fmq_bits_validation(self, federation, tiny_config):
        participants, test, cost_models, config = federation
        with pytest.raises(ValueError):
            FMQFineTuner(fresh_server(tiny_config), participants, test,
                         cost_models=cost_models, config=config, bits=5)

    def test_fmes_round_only_updates_selected_experts(self, federation, tiny_config):
        participants, test, cost_models, config = federation
        tuner = FMESFineTuner(fresh_server(tiny_config), participants, test,
                              cost_models=cost_models, config=config)
        _, results = tuner.run_round(0)
        for result in results.values():
            assert len(result.updates) <= 3  # max_tuning_experts
            assert result.breakdown.profiling > 0
            assert not result.overlap_profiling


class TestFluxFineTuner:
    def test_flux_round_structure(self, federation, tiny_config):
        participants, test, cost_models, config = federation
        tuner = FluxFineTuner(fresh_server(tiny_config), participants, test,
                              cost_models=cost_models, config=config,
                              flux_config=FluxConfig(seed=0))
        round_result, results = tuner.run_round(0)
        assignments = tuner.current_assignments()
        assert set(assignments) == {p.participant_id for p in participants}
        for pid, result in results.items():
            assignment = assignments[pid]
            # updates correspond exactly to the exploitation (tuning) experts
            updated = {(u.layer, u.expert) for u in result.updates}
            assert updated == set(assignment.exploitation)
            assert result.overlap_profiling
            assert result.report["num_tuning_experts"] == len(assignment.exploitation)
            # compact model respects the participant's loadable-expert scale
            assert result.report["num_local_experts"] < sum(tiny_config.experts_per_layer()) + \
                tiny_config.n_layers

    def test_flux_utilities_refresh_over_rounds(self, federation, tiny_config):
        participants, test, cost_models, config = federation
        tuner = FluxFineTuner(fresh_server(tiny_config), participants, test,
                              cost_models=cost_models, config=config,
                              flux_config=FluxConfig(seed=0))
        tuner.run_round(0)
        state = tuner.states[participants[0].participant_id]
        refreshed = [key for key, count in state.utilities.update_counts.items() if count > 0]
        assert refreshed  # at least the tuning + exploration experts got measurements

    def test_flux_global_model_changes_after_round(self, federation, tiny_config):
        participants, test, cost_models, config = federation
        server = fresh_server(tiny_config)
        before = server.global_state()
        tuner = FluxFineTuner(server, participants, test, cost_models=cost_models, config=config)
        tuner.run_round(0)
        after = server.global_state()
        changed = any(not np.allclose(before[k], after[k]) for k in before)
        assert changed

    def test_flux_without_cost_models_runs(self, federation, tiny_config):
        participants, test, _, config = federation
        tuner = FluxFineTuner(fresh_server(tiny_config), participants, test, config=config)
        result = tuner.run(num_rounds=1)
        assert result.total_time == pytest.approx(0.0)

    def test_stale_profiling_reduces_round_time(self, federation, tiny_config):
        participants, test, cost_models, config = federation
        stale = FluxFineTuner(fresh_server(tiny_config), participants, test,
                              cost_models=cost_models, config=config,
                              flux_config=FluxConfig(stale_profiling=True, seed=0))
        fresh = FluxFineTuner(fresh_server(tiny_config), participants, test,
                              cost_models=cost_models, config=config,
                              flux_config=FluxConfig(stale_profiling=False, seed=0))
        stale_round, _ = stale.run_round(0)
        fresh_round, _ = fresh.run_round(0)
        assert stale_round.round_duration <= fresh_round.round_duration


class TestMethodComparison:
    def test_flux_round_cheaper_than_fmd(self, federation, tiny_config):
        participants, test, cost_models, config = federation
        flux = FluxFineTuner(fresh_server(tiny_config), participants, test,
                             cost_models=cost_models, config=config)
        fmd = FMDFineTuner(fresh_server(tiny_config), participants, test,
                           cost_models=cost_models, config=config)
        flux_round, _ = flux.run_round(0)
        fmd_round, _ = fmd.run_round(0)
        assert flux_round.round_duration < fmd_round.round_duration

    def test_all_methods_produce_valid_metrics(self, federation, tiny_config):
        participants, test, cost_models, config = federation
        for cls in (FluxFineTuner, FMDFineTuner, FMQFineTuner, FMESFineTuner):
            tuner = cls(fresh_server(tiny_config), participants, test,
                        cost_models=cost_models, config=config)
            result = tuner.run(num_rounds=1)
            assert 0.0 <= result.final_metric() <= 1.0
            assert result.total_time > 0
            assert len(result.rounds) == 1
