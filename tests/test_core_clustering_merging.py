"""Tests for expert clustering and adaptive merging / compact-model construction."""

import numpy as np
import pytest

from repro.analysis import output_error, profile_activation
from repro.core import (
    build_compact_model,
    cluster_experts,
    merge_cluster,
    merge_weights,
    pca_reduce,
    plan_compact_model,
)


@pytest.fixture()
def profile(tiny_model, gsm_batches):
    return profile_activation(tiny_model, gsm_batches)


class TestPCA:
    def test_reduces_dimensionality(self):
        matrix = np.random.default_rng(0).standard_normal((10, 50))
        reduced = pca_reduce(matrix, 4)
        assert reduced.shape == (10, 4)

    def test_components_capped_by_matrix_size(self):
        matrix = np.random.default_rng(0).standard_normal((3, 5))
        assert pca_reduce(matrix, 10).shape == (3, 3)

    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            pca_reduce(np.zeros(5), 2)

    def test_preserves_separation_of_distinct_groups(self):
        rng = np.random.default_rng(1)
        group_a = rng.standard_normal((5, 20)) + 10
        group_b = rng.standard_normal((5, 20)) - 10
        reduced = pca_reduce(np.vstack([group_a, group_b]), 2)
        dist_within = np.linalg.norm(reduced[0] - reduced[1])
        dist_across = np.linalg.norm(reduced[0] - reduced[7])
        assert dist_across > dist_within


class TestClusterExperts:
    def _features(self, rng, groups, dim=30):
        """Build features with known group structure and return (features, ids)."""
        rows = []
        for center in groups:
            rows.append(rng.standard_normal(dim) * 0.05 + center)
        return np.stack(rows)

    def test_every_expert_assigned_exactly_once(self):
        rng = np.random.default_rng(0)
        features = [rng.standard_normal((6, 30)), rng.standard_normal((5, 30))]
        ids = [[0, 1, 2, 3, 4, 5], [1, 2, 3, 4, 5]]
        result = cluster_experts(features, ids, budgets=[2, 2], seed=0)
        for layer, layer_ids in enumerate(ids):
            assigned = [e for cluster in result.clusters_per_layer[layer] for e in cluster]
            assert sorted(assigned) == sorted(layer_ids)

    def test_budgets_respected(self):
        rng = np.random.default_rng(1)
        features = [rng.standard_normal((8, 30))]
        result = cluster_experts(features, [[*range(8)]], budgets=[3], seed=0)
        assert len(result.clusters_per_layer[0]) <= 3

    def test_similar_experts_grouped_together(self):
        rng = np.random.default_rng(2)
        # two well-separated groups of experts
        features = [np.vstack([
            self._features(rng, [np.full(30, 5.0)] * 3),
            self._features(rng, [np.full(30, -5.0)] * 3),
        ])]
        result = cluster_experts(features, [[0, 1, 2, 3, 4, 5]], budgets=[2], seed=0,
                                 pca_components=4)
        clusters = [set(c) for c in result.clusters_per_layer[0]]
        assert {0, 1, 2} in clusters and {3, 4, 5} in clusters

    def test_fused_and_per_layer_cover_same_experts(self):
        rng = np.random.default_rng(3)
        features = [rng.standard_normal((6, 20)), rng.standard_normal((6, 20))]
        ids = [[*range(6)], [*range(6)]]
        fused = cluster_experts(features, ids, [2, 3], mode="fused", seed=1)
        per_layer = cluster_experts(features, ids, [2, 3], mode="per_layer", seed=1)
        for layer in range(2):
            fused_members = sorted(e for c in fused.clusters_per_layer[layer] for e in c)
            layer_members = sorted(e for c in per_layer.clusters_per_layer[layer] for e in c)
            assert fused_members == layer_members == list(range(6))

    def test_empty_layers_handled(self):
        rng = np.random.default_rng(4)
        features = [np.zeros((0, 1)), rng.standard_normal((4, 10))]
        result = cluster_experts(features, [[], [0, 1, 2, 3]], budgets=[0, 2], seed=0)
        assert result.clusters_per_layer[0] == []
        assert result.num_clusters() >= 1

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            cluster_experts([np.zeros((2, 4))], [[0, 1]], [1], mode="agglomerative")

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            cluster_experts([np.zeros((2, 4))], [[0, 1]], [1, 2])

    def test_elapsed_time_recorded(self):
        rng = np.random.default_rng(5)
        result = cluster_experts([rng.standard_normal((4, 8))], [[0, 1, 2, 3]], [2], seed=0)
        assert result.elapsed_seconds >= 0
        assert result.mode == "fused"

    def test_cluster_of_lookup(self):
        rng = np.random.default_rng(6)
        result = cluster_experts([rng.standard_normal((4, 8))], [[0, 1, 2, 3]], [2], seed=0)
        assert result.cluster_of(0, 0) is not None
        assert result.cluster_of(0, 99) is None


class TestMergeWeights:
    def test_average_strategy_uniform(self):
        weights = merge_weights([0, 1, 2], np.array([0.5, 0.3, 0.2]), np.zeros(3), "average")
        assert np.allclose(weights, 1.0)

    def test_frequency_strategy(self):
        weights = merge_weights([0, 2], np.array([0.6, 0.1, 0.3]), np.zeros(3), "frequency")
        assert np.allclose(weights, [0.6, 0.3])

    def test_attention_frequency_strategy(self):
        frequencies = np.array([0.5, 0.5])
        attentions = np.array([0.9, 0.1])
        weights = merge_weights([0, 1], frequencies, attentions, "attention_frequency")
        assert weights[0] > weights[1]

    def test_zero_scores_fall_back_to_uniform(self):
        weights = merge_weights([0, 1], np.zeros(2), np.zeros(2), "attention_frequency")
        assert np.allclose(weights, 1.0)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            merge_weights([0], np.ones(1), np.ones(1), "median")


class TestMergeCluster:
    def test_merged_expert_is_weighted_average(self, tiny_model, profile):
        frequencies = np.array([0.4, 0.4, 0.1, 0.1])
        attentions = np.ones(4)
        merged = merge_cluster(tiny_model, 0, [0, 1], frequencies, attentions, "frequency")
        expected = 0.5 * (tiny_model.get_expert(0, 0).w_gate.weight.data
                          + tiny_model.get_expert(0, 1).w_gate.weight.data)
        assert np.allclose(merged.w_gate.weight.data, expected)

    def test_merged_expert_is_frozen(self, tiny_model, profile):
        merged = merge_cluster(tiny_model, 0, [0, 1], profile.frequencies[0],
                               profile.attention_scores[0], "attention_frequency")
        assert all(not p.requires_grad for p in merged.parameters())


class TestCompactModelPlan:
    def test_plan_covers_every_expert(self, tiny_model, profile):
        plan = plan_compact_model(tiny_model, {0: [0], 1: [2]}, profile, max_non_tuning_slots=4)
        for layer in range(tiny_model.num_layers):
            covered = set(plan.tuning_experts[layer]) | set(plan.preserved_frozen[layer])
            for cluster in plan.clusters[layer]:
                covered |= set(cluster)
            assert covered == set(range(tiny_model.experts_per_layer()[layer]))

    def test_plan_respects_preserved_frozen(self, tiny_model, profile):
        plan = plan_compact_model(tiny_model, {0: [0]}, profile, max_non_tuning_slots=4,
                                  preserved_frozen={0: [1], 1: [3]})
        assert plan.preserved_frozen[0] == [1]
        assert 1 not in [e for c in plan.clusters[0] for e in c]

    def test_plan_counts(self, tiny_model, profile):
        plan = plan_compact_model(tiny_model, {0: [0, 1], 1: [0]}, profile, max_non_tuning_slots=4)
        assert plan.num_local_experts() >= 3
        assert plan.num_merged_inputs() == sum(
            len(c) for layer in plan.clusters for c in layer)


class TestBuildCompactModel:
    def test_compact_model_runs_and_has_fewer_experts(self, tiny_model, profile, gsm_batches):
        plan = plan_compact_model(tiny_model, {0: [0], 1: [1]}, profile, max_non_tuning_slots=2)
        compact, tuning_slots, frozen_slots = build_compact_model(tiny_model, plan, profile)
        assert sum(compact.local_experts_per_layer()) < sum(tiny_model.local_experts_per_layer())
        batch = gsm_batches[0]
        loss = compact.compute_loss(batch.input_ids, labels=batch.labels,
                                    attention_mask=batch.attention_mask)
        assert np.isfinite(loss.item())

    def test_tuning_slot_mapping_points_to_original_weights(self, tiny_model, profile):
        plan = plan_compact_model(tiny_model, {0: [2], 1: [3]}, profile, max_non_tuning_slots=2)
        compact, tuning_slots, _ = build_compact_model(tiny_model, plan, profile)
        for (layer, slot), (_, original) in tuning_slots.items():
            assert np.allclose(compact.get_expert(layer, slot).weight_vector(),
                               tiny_model.get_expert(layer, original).weight_vector())

    def test_only_tuning_slots_are_trainable_targets(self, tiny_model, profile):
        plan = plan_compact_model(tiny_model, {0: [0], 1: [1]}, profile, max_non_tuning_slots=2,
                                  preserved_frozen={0: [1]})
        compact, tuning_slots, frozen_slots = build_compact_model(tiny_model, plan, profile)
        for key in frozen_slots:
            layer, slot = key
            assert all(not p.requires_grad for p in compact.get_expert(layer, slot).parameters())
        assert set(tuning_slots).isdisjoint(set(frozen_slots))

    def test_all_experts_tuning_keeps_model_identical(self, tiny_model, profile, gsm_batches):
        all_experts = {layer: list(range(count))
                       for layer, count in enumerate(tiny_model.experts_per_layer())}
        plan = plan_compact_model(tiny_model, all_experts, profile,
                                  max_non_tuning_slots=tiny_model.num_layers)
        compact, tuning_slots, _ = build_compact_model(tiny_model, plan, profile)
        assert len(tuning_slots) == sum(tiny_model.experts_per_layer())
        assert output_error(tiny_model, compact, gsm_batches[:1]) == pytest.approx(0.0, abs=1e-9)

    def test_merged_model_error_smaller_than_discarding(self, tiny_model, profile, gsm_batches):
        """Merging non-tuning experts hurts less than dropping them (the paper's Obs. 3)."""
        from repro.baselines import build_selected_model

        tuning = {0: [int(np.argmax(profile.frequencies[0]))],
                  1: [int(np.argmax(profile.frequencies[1]))]}
        plan = plan_compact_model(tiny_model, tuning, profile, max_non_tuning_slots=2)
        merged, _, _ = build_compact_model(tiny_model, plan, profile)
        selected_keys = [(layer, experts[0]) for layer, experts in tuning.items()]
        dropped, _ = build_selected_model(tiny_model, selected_keys)
        merged_error = output_error(tiny_model, merged, gsm_batches[:2])
        dropped_error = output_error(tiny_model, dropped, gsm_batches[:2])
        assert merged_error < dropped_error
