"""Unit tests for the autograd Tensor: ops, broadcasting, backward correctness."""

import numpy as np
import pytest

from repro.autograd import Tensor, concatenate, no_grad, scatter_rows, stack, where
from repro.autograd.tensor import _unbroadcast, is_grad_enabled


def numeric_gradient(fn, value, eps=1e-6):
    """Central-difference gradient of a scalar-valued fn at value."""
    grad = np.zeros_like(value)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(value)
        flat[i] = original - eps
        minus = fn(value)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(op, shape, seed=0, atol=1e-6):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(shape)
    tensor = Tensor(data.copy(), requires_grad=True)
    out = op(tensor)
    out.sum().backward()

    def scalar_fn(value):
        return op(Tensor(value.copy())).sum().item()

    numeric = numeric_gradient(scalar_fn, data.copy())
    assert np.allclose(tensor.grad, numeric, atol=atol), f"analytic {tensor.grad} vs numeric {numeric}"


class TestElementwiseGradients:
    def test_add_scalar(self):
        check_gradient(lambda t: t + 3.0, (3, 4))

    def test_mul(self):
        check_gradient(lambda t: t * t, (2, 5))

    def test_div(self):
        check_gradient(lambda t: (t + 5.0) / 2.5, (4,))

    def test_pow(self):
        check_gradient(lambda t: (t * t + 1.0) ** 1.5, (3, 3))

    def test_exp(self):
        check_gradient(lambda t: t.exp(), (2, 3))

    def test_log(self):
        check_gradient(lambda t: (t * t + 1.0).log(), (5,))

    def test_tanh(self):
        check_gradient(lambda t: t.tanh(), (3, 2))

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid(), (4,))

    def test_relu(self):
        check_gradient(lambda t: (t + 0.3).relu(), (6,), atol=1e-5)

    def test_silu(self):
        check_gradient(lambda t: t.silu(), (3, 4))

    def test_gelu(self):
        check_gradient(lambda t: t.gelu(), (3, 4), atol=1e-5)

    def test_sqrt(self):
        check_gradient(lambda t: (t * t + 2.0).sqrt(), (5,))

    def test_neg_and_sub(self):
        check_gradient(lambda t: (1.0 - t) * 2.0 - t, (3,))


class TestReductionGradients:
    def test_sum_all(self):
        check_gradient(lambda t: t.sum(), (3, 4))

    def test_sum_axis(self):
        check_gradient(lambda t: (t.sum(axis=0) ** 2).sum(), (3, 4))

    def test_sum_keepdims(self):
        check_gradient(lambda t: (t.sum(axis=1, keepdims=True) * t).sum(), (3, 4))

    def test_mean(self):
        check_gradient(lambda t: (t.mean(axis=-1) ** 2).sum(), (2, 6))

    def test_max(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((3, 5))
        t = Tensor(data, requires_grad=True)
        t.max(axis=1).sum().backward()
        # gradient is 1 at each row's argmax, 0 elsewhere
        expected = np.zeros_like(data)
        expected[np.arange(3), data.argmax(axis=1)] = 1.0
        assert np.allclose(t.grad, expected)


class TestSoftmaxGradients:
    def test_softmax_rows_sum_to_one(self):
        t = Tensor(np.random.default_rng(0).standard_normal((4, 7)))
        s = t.softmax(axis=-1)
        assert np.allclose(s.data.sum(axis=-1), 1.0)

    def test_softmax_gradient(self):
        check_gradient(lambda t: (t.softmax(axis=-1) ** 2).sum(), (3, 5))

    def test_log_softmax_gradient(self):
        check_gradient(lambda t: (t.log_softmax(axis=-1) * 0.5).sum(), (2, 6))

    def test_log_softmax_matches_log_of_softmax(self):
        data = np.random.default_rng(2).standard_normal((3, 4))
        a = Tensor(data).log_softmax(axis=-1).data
        b = np.log(Tensor(data).softmax(axis=-1).data)
        assert np.allclose(a, b)


class TestMatmulGradients:
    def test_2d_matmul(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        assert np.allclose(a.grad, np.ones((3, 5)) @ b.data.T)
        assert np.allclose(b.grad, a.data.T @ np.ones((3, 5)))

    def test_batched_matmul_shapes(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)

    def test_broadcast_matmul_3d_2d(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        w = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        (a @ w).sum().backward()
        assert w.grad.shape == (4, 5)
        assert np.allclose(w.grad, a.data.reshape(-1, 4).T @ np.ones((6, 5)))


class TestBroadcasting:
    def test_unbroadcast_leading_dims(self):
        grad = np.ones((4, 3, 2))
        reduced = _unbroadcast(grad, (3, 2))
        assert reduced.shape == (3, 2)
        assert np.allclose(reduced, 4.0)

    def test_unbroadcast_singleton_dims(self):
        grad = np.ones((3, 5))
        reduced = _unbroadcast(grad, (3, 1))
        assert reduced.shape == (3, 1)
        assert np.allclose(reduced, 5.0)

    def test_add_broadcast_gradient(self):
        a = Tensor(np.random.default_rng(0).standard_normal((3, 4)), requires_grad=True)
        bias = Tensor(np.random.default_rng(1).standard_normal(4), requires_grad=True)
        (a + bias).sum().backward()
        assert np.allclose(bias.grad, 3.0 * np.ones(4))

    def test_mul_broadcast_gradient(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.full((1, 3), 2.0), requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, 2.0)
        assert np.allclose(b.grad, 2.0)


class TestShapeOps:
    def test_reshape_gradient(self):
        check_gradient(lambda t: (t.reshape(6, 2) ** 2).sum(), (3, 4))

    def test_transpose_gradient(self):
        check_gradient(lambda t: (t.transpose(1, 0) ** 2).sum(), (3, 4))

    def test_transpose_default_reverses(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.transpose().shape == (4, 3, 2)

    def test_swapaxes(self):
        t = Tensor(np.random.default_rng(0).standard_normal((2, 3, 4)), requires_grad=True)
        t.swapaxes(0, 2).sum().backward()
        assert t.grad.shape == (2, 3, 4)
        assert np.allclose(t.grad, 1.0)

    def test_getitem_gradient_accumulates(self):
        t = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        rows = np.array([0, 0, 1])
        out = t[rows]
        out.sum().backward()
        assert np.allclose(t.grad, [[2, 2, 2], [1, 1, 1]])


class TestGraphMechanics:
    def test_backward_requires_scalar_or_grad(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_on_non_grad_tensor_raises(self):
        t = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            t.sum().backward()

    def test_grad_accumulates_across_backwards(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2).sum().backward()
        (t * 3).sum().backward()
        assert np.allclose(t.grad, 5.0)

    def test_detach_stops_gradient(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad

    def test_no_grad_context(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = t * 2
        assert is_grad_enabled()
        assert not out.requires_grad
        assert out._prev == ()

    def test_diamond_graph_gradient(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        a = t * 3
        b = t * 4
        (a * b).backward()
        # d/dt (12 t^2) = 24 t = 48
        assert np.allclose(t.grad, 48.0)

    def test_constructors(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert np.allclose(Tensor.ones(2).data, 1.0)
        assert Tensor.randn(4, rng=np.random.default_rng(0)).shape == (4,)

    def test_repr_and_item(self):
        t = Tensor([1.5], requires_grad=True)
        assert "requires_grad" in repr(t)
        assert t.item() == pytest.approx(1.5)


class TestCombinators:
    def test_stack_gradient(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3) * 2, requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        (out * 3).sum().backward()
        assert np.allclose(a.grad, 3.0)
        assert np.allclose(b.grad, 3.0)

    def test_concatenate_gradient(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, 1.0)

    def test_where_gradient_routes_to_branches(self):
        cond = np.array([True, False, True])
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        where(cond, a, b).sum().backward()
        assert np.allclose(a.grad, [1, 0, 1])
        assert np.allclose(b.grad, [0, 1, 0])

    def test_scatter_rows_forward_and_backward(self):
        src = Tensor(np.arange(6, dtype=float).reshape(3, 2), requires_grad=True)
        rows = np.array([0, 2, 0])
        out = scatter_rows(src, rows, num_rows=4)
        expected = np.zeros((4, 2))
        expected[0] = src.data[0] + src.data[2]
        expected[2] = src.data[1]
        assert np.allclose(out.data, expected)
        (out * 2).sum().backward()
        assert np.allclose(src.grad, 2.0)

    def test_scatter_rows_validates_rows(self):
        src = Tensor(np.ones((3, 2)))
        with pytest.raises(ValueError):
            scatter_rows(src, np.array([[0, 1]]), num_rows=4)
