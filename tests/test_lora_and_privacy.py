"""Tests for the LoRA expert adapters and the differential-privacy upload hook."""

import numpy as np
import pytest

from repro.autograd import Adam, Linear, Tensor
from repro.federated import ExpertUpdate, GaussianMechanism, epsilon_estimate
from repro.models import LoRALinear, MoETransformer, apply_lora_to_experts, lora_parameter_savings


class TestLoRALinear:
    def _layer(self, rank=2):
        base = Linear(8, 6, rng=np.random.default_rng(0))
        return LoRALinear(base, rank=rank, alpha=4.0, rng=np.random.default_rng(1))

    def test_initial_output_matches_base(self):
        layer = self._layer()
        x = Tensor(np.random.default_rng(2).standard_normal((5, 8)))
        assert np.allclose(layer(x).data, layer.base(x).data)

    def test_base_weights_frozen_adapters_trainable(self):
        layer = self._layer()
        trainable = [name for name, p in layer.named_parameters() if p.requires_grad]
        assert set(trainable) == {"lora_a", "lora_b"}

    def test_invalid_rank_rejected(self):
        with pytest.raises(ValueError):
            LoRALinear(Linear(4, 4), rank=0)

    def test_training_moves_only_adapters(self):
        layer = self._layer()
        base_before = layer.base.weight.data.copy()
        optimizer = Adam([p for p in layer.parameters() if p.requires_grad], lr=0.05)
        x = Tensor(np.random.default_rng(3).standard_normal((16, 8)))
        target = np.random.default_rng(4).standard_normal((16, 6))
        for _ in range(20):
            optimizer.zero_grad()
            loss = ((layer(x) - Tensor(target)) ** 2).mean()
            loss.backward()
            optimizer.step()
        assert np.allclose(layer.base.weight.data, base_before)
        assert np.abs(layer.lora_b.data).sum() > 0

    def test_merge_into_base_preserves_function(self):
        layer = self._layer()
        layer.lora_a.data[...] = np.random.default_rng(5).standard_normal(layer.lora_a.shape)
        layer.lora_b.data[...] = np.random.default_rng(6).standard_normal(layer.lora_b.shape)
        x = Tensor(np.random.default_rng(7).standard_normal((4, 8)))
        before = layer(x).data.copy()
        layer.merge_into_base()
        after = layer(x).data
        assert np.allclose(before, after, atol=1e-9)

    def test_adapter_state_roundtrip(self):
        layer = self._layer()
        layer.lora_b.data[...] = 1.0
        state = layer.adapter_state()
        other = self._layer()
        other.load_adapter_state(state)
        assert np.allclose(other.lora_b.data, 1.0)


class TestLoRAExpert:
    def test_wrapping_preserves_output_initially(self, tiny_model, gsm_batches):
        batch = gsm_batches[0]
        before = tiny_model.forward(batch.input_ids, attention_mask=batch.attention_mask).data
        apply_lora_to_experts(tiny_model, rank=2, seed=0)
        after = tiny_model.forward(batch.input_ids, attention_mask=batch.attention_mask).data
        assert np.allclose(before, after, atol=1e-9)

    def test_adapter_parameter_count_is_small(self, tiny_model):
        wrapped = apply_lora_to_experts(tiny_model, expert_keys=[(0, 0)], rank=2)
        lora_expert = wrapped[(0, 0)]
        full = 3 * tiny_model.config.d_model * tiny_model.config.d_ff
        assert lora_expert.num_adapter_parameters() < full

    def test_parameter_savings_fraction(self, tiny_model):
        savings = lora_parameter_savings(tiny_model, rank=2)
        assert 0.0 < savings < 1.0

    def test_adapter_state_roundtrip(self, tiny_model):
        wrapped = apply_lora_to_experts(tiny_model, expert_keys=[(0, 1)], rank=2, seed=1)
        expert = wrapped[(0, 1)]
        expert.w_gate.lora_b.data[...] = 0.5
        state = expert.adapter_state()
        assert "w_gate.lora_b" in state
        fresh_model = MoETransformer(tiny_model.config)
        fresh = apply_lora_to_experts(fresh_model, expert_keys=[(0, 1)], rank=2, seed=2)[(0, 1)]
        fresh.load_adapter_state(state)
        assert np.allclose(fresh.w_gate.lora_b.data, 0.5)

    def test_lora_expert_training_reduces_loss(self, tiny_model, gsm_batches):
        apply_lora_to_experts(tiny_model, rank=2, seed=3)
        params = [p for p in tiny_model.parameters() if p.requires_grad]
        assert params
        optimizer = Adam(params, lr=1e-2)
        batch = gsm_batches[0]
        first = None
        for _ in range(6):
            optimizer.zero_grad()
            loss = tiny_model.compute_loss(batch.input_ids, labels=batch.labels,
                                           attention_mask=batch.attention_mask)
            if first is None:
                first = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first


class TestGaussianMechanism:
    def _state(self, scale=1.0):
        rng = np.random.default_rng(0)
        return {"w": rng.standard_normal((4, 4)) * scale, "b": rng.standard_normal(4) * scale}

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianMechanism(clip_norm=0.0)
        with pytest.raises(ValueError):
            GaussianMechanism(noise_multiplier=-1.0)

    def test_clipping_bounds_norm(self):
        mechanism = GaussianMechanism(clip_norm=1.0, noise_multiplier=0.0)
        state = self._state(scale=100.0)
        privatized = mechanism.privatize_state(state)
        norm = np.sqrt(sum((v ** 2).sum() for v in privatized.values()))
        assert norm <= 1.0 + 1e-9

    def test_small_updates_unchanged_without_noise(self):
        mechanism = GaussianMechanism(clip_norm=1e6, noise_multiplier=0.0)
        state = self._state()
        privatized = mechanism.privatize_state(state)
        for key in state:
            assert np.allclose(privatized[key], state[key])

    def test_noise_changes_values(self):
        mechanism = GaussianMechanism(clip_norm=1.0, noise_multiplier=1.0, seed=1)
        state = self._state()
        privatized = mechanism.privatize_state(state)
        assert not np.allclose(privatized["w"], state["w"])
        assert mechanism.noise_stddev() == pytest.approx(1.0)

    def test_reference_delta_mode(self):
        mechanism = GaussianMechanism(clip_norm=0.5, noise_multiplier=0.0)
        reference = self._state()
        state = {k: v + 10.0 for k, v in reference.items()}
        privatized = mechanism.privatize_state(state, reference=reference)
        delta_norm = np.sqrt(sum(((privatized[k] - reference[k]) ** 2).sum() for k in reference))
        assert delta_norm <= 0.5 + 1e-9

    def test_privatize_updates_preserves_metadata(self):
        mechanism = GaussianMechanism(clip_norm=1.0, noise_multiplier=0.1, seed=2)
        updates = [ExpertUpdate(3, 0, 1, self._state(), 7.0)]
        privatized = mechanism.privatize_updates(updates)
        assert privatized[0].participant_id == 3
        assert privatized[0].key == (0, 1)
        assert privatized[0].weight == 7.0

    def test_epsilon_estimate_behaviour(self):
        tight = epsilon_estimate(noise_multiplier=2.0, num_rounds=10)
        loose = epsilon_estimate(noise_multiplier=0.5, num_rounds=10)
        assert tight < loose
        assert epsilon_estimate(0.0, 10) == float("inf")
        with pytest.raises(ValueError):
            epsilon_estimate(1.0, 0)
        with pytest.raises(ValueError):
            epsilon_estimate(1.0, 10, sample_rate=2.0)
