"""Tests for the zero-copy decode-and-fold fast path.

Pins the three invariants the hot path rests on: scratch decode is
*bit-identical* to fresh-allocation decode for every registered codec (the
fold must not change a single bit when the scratch pool engages), corrupted
or truncated frames surface as :class:`PayloadCorruptedError` from the
memoryview reader (never an over-read or a silent partial decode), and the
:class:`ScratchPool` itself recycles instead of allocating in steady state.
"""

import pickle
import socket
import struct
import zlib

import numpy as np
import pytest

from repro.comm import (
    FrameStream,
    PayloadCorruptedError,
    ScratchPool,
    StreamingAggregator,
    decode_state_dict,
    decode_update,
    encode_state_dict,
    encode_update,
    get_codec,
    thread_scratch,
)
from repro.comm.serialization import MAGIC
from repro.federated import ExpertUpdate

#: every registered codec family, parameterised variants included
ALL_CODECS = [
    "fp64", "fp32", "fp16",
    "int8", "int4", "int2",
    "topk", "topk:0.25", "topk:0.25:int4", "topk:0.5:int2",
    "sparse-delta",
]

SHAPES = [(16, 16), (3,), (5, 7, 2), (1, 1)]


def _make_state(rng, shapes, dtype):
    return {f"t{i}": rng.normal(size=shape).astype(dtype)
            for i, shape in enumerate(shapes)}


def _roundtrip_pair(codec_name, dtype, shapes, seed=0):
    """(frame, reference) for one encoded state under ``codec_name``."""
    rng = np.random.default_rng(seed)
    codec = get_codec(codec_name)
    state = _make_state(rng, shapes, dtype)
    reference = None
    if codec.needs_reference:
        reference = {name: value + rng.normal(size=value.shape).astype(dtype)
                     for name, value in state.items()}
    return encode_state_dict(state, codec, reference=reference), reference


# ------------------------------------------------------------- scratch pool
class TestScratchPool:
    def test_take_recycle_reuses_storage(self):
        pool = ScratchPool()
        first = pool.take((4, 4), np.dtype("<f8"))
        assert pool.allocations == 1
        pool.recycle()
        second = pool.take((4, 4), np.dtype("<f8"))
        assert second is first
        assert pool.allocations == 1

    def test_distinct_keys_allocate_separately(self):
        pool = ScratchPool()
        a = pool.take((4, 4), np.dtype("<f8"))
        b = pool.take((4, 4), np.dtype("<f4"))
        c = pool.take((2, 8), np.dtype("<f8"))
        assert len({id(a), id(b), id(c)}) == 3
        assert pool.allocations == 3

    def test_outstanding_takes_do_not_alias(self):
        pool = ScratchPool()
        a = pool.take((3,), np.dtype("<f8"))
        b = pool.take((3,), np.dtype("<f8"))
        assert a is not b

    def test_term_is_persistent_and_separate_from_take(self):
        pool = ScratchPool()
        term = pool.term((4, 4))
        taken = pool.take((4, 4), np.dtype("<f8"))
        assert term is not taken
        assert pool.term((4, 4)) is term
        pool.recycle()
        assert pool.term((4, 4)) is term

    def test_pickle_ships_an_empty_pool(self):
        pool = ScratchPool()
        pool.take((8, 8), np.dtype("<f8"))
        pool.term((8, 8))
        clone = pickle.loads(pickle.dumps(pool))
        assert clone.allocations == 0
        assert clone._free == {} and clone._terms == {} and clone._taken == []

    def test_thread_scratch_is_stable_per_thread(self):
        assert thread_scratch() is thread_scratch()


# ----------------------------------------------------- decode bit-identity
@pytest.mark.parametrize("codec_name", ALL_CODECS)
@pytest.mark.parametrize("dtype", ["<f8", "<f4"])
def test_scratch_decode_bit_identical(codec_name, dtype):
    frame, reference = _roundtrip_pair(codec_name, dtype, SHAPES)
    fresh = decode_state_dict(frame, reference=reference)
    pool = ScratchPool()
    scratched = decode_state_dict(frame, reference=reference, scratch=pool)
    assert fresh.keys() == scratched.keys()
    for name in fresh:
        assert fresh[name].dtype == scratched[name].dtype
        assert fresh[name].shape == scratched[name].shape
        np.testing.assert_array_equal(fresh[name], scratched[name])
    pool.recycle()


@pytest.mark.parametrize("codec_name", ["topk:0.25:int4", "sparse-delta"])
def test_scratch_decode_bit_identical_large_tensor(codec_name):
    # > 65535 elements exercises the wide (u32) index width of the sparse
    # codecs' integer sections
    frame, reference = _roundtrip_pair(codec_name, "<f8", [(66000,)])
    fresh = decode_state_dict(frame, reference=reference)
    scratched = decode_state_dict(frame, reference=reference,
                                  scratch=ScratchPool())
    for name in fresh:
        np.testing.assert_array_equal(fresh[name], scratched[name])


def test_steady_state_decode_is_allocation_free():
    frame, _ = _roundtrip_pair("int8", "<f8", SHAPES)
    pool = ScratchPool()
    decode_state_dict(frame, scratch=pool)
    pool.recycle()
    warm = pool.allocations
    for _ in range(5):
        decode_state_dict(frame, scratch=pool)
        pool.recycle()
    assert pool.allocations == warm


def test_same_dtype_cast_decode_is_frame_backed():
    # fp64 wire of float64 tensors: under scratch the decoded arrays are
    # read-only views straight into the frame — no pool checkout at all
    frame, _ = _roundtrip_pair("fp64", "<f8", SHAPES)
    pool = ScratchPool()
    state = decode_state_dict(frame, scratch=pool)
    assert pool.allocations == 0
    for value in state.values():
        assert not value.flags.writeable
    fresh = decode_state_dict(frame)
    for name in fresh:
        np.testing.assert_array_equal(fresh[name], state[name])
        # fresh decode still hands out owned, writable arrays
        assert fresh[name].flags.writeable


def test_update_scratch_decode_matches(monkeypatch):
    rng = np.random.default_rng(3)
    update = ExpertUpdate(participant_id=7, layer=1, expert=2,
                          state=_make_state(rng, SHAPES, "<f8"), weight=2.5)
    frame = encode_update(update, get_codec("fp32"))
    fresh = decode_update(frame)
    scratched = decode_update(frame, scratch=ScratchPool())
    assert (fresh.participant_id, fresh.layer, fresh.expert, fresh.weight) == \
        (scratched.participant_id, scratched.layer, scratched.expert,
         scratched.weight) == (7, 1, 2, 2.5)
    for name in fresh.state:
        np.testing.assert_array_equal(fresh.state[name], scratched.state[name])


def test_memoryview_input_decodes_like_bytes():
    frame, _ = _roundtrip_pair("fp32", "<f8", SHAPES)
    from_bytes = decode_state_dict(frame)
    from_view = decode_state_dict(memoryview(frame))
    from_bytearray = decode_state_dict(bytearray(frame))
    for name in from_bytes:
        np.testing.assert_array_equal(from_bytes[name], from_view[name])
        np.testing.assert_array_equal(from_bytes[name], from_bytearray[name])


# ------------------------------------------------------------- fuzz: safety
@pytest.mark.parametrize("codec_name", ["fp64", "fp16", "int4", "topk:0.5:int2"])
def test_truncated_frames_always_raise(codec_name):
    frame, reference = _roundtrip_pair(codec_name, "<f8", [(16, 16), (5,)])
    # cut at every length across the header and a stride through the payload
    cuts = list(range(0, min(len(frame), 64))) + \
        list(range(64, len(frame), 97)) + [len(frame) - 1]
    for cut in cuts:
        with pytest.raises(PayloadCorruptedError):
            decode_state_dict(frame[:cut], reference=reference)
        with pytest.raises(PayloadCorruptedError):
            decode_state_dict(frame[:cut], reference=reference,
                              scratch=ScratchPool())


@pytest.mark.parametrize("codec_name", ["fp64", "int8", "sparse-delta"])
def test_bit_flips_always_raise(codec_name):
    frame, reference = _roundtrip_pair(codec_name, "<f8", [(8, 8)])
    rng = np.random.default_rng(11)
    for _ in range(60):
        corrupt = bytearray(frame)
        pos = int(rng.integers(len(corrupt)))
        corrupt[pos] ^= 1 << int(rng.integers(8))
        with pytest.raises(PayloadCorruptedError):
            decode_state_dict(bytes(corrupt), reference=reference,
                              scratch=ScratchPool())


def _reseal(body: bytearray) -> bytes:
    """Append a fresh CRC so only the *inner* lie survives the checksum."""
    return bytes(body) + struct.pack("<I", zlib.crc32(bytes(body)))


def test_crc_valid_but_lying_lengths_raise():
    frame, _ = _roundtrip_pair("fp64", "<f8", [(4, 4)])
    body = bytearray(frame[:-4])
    # ntensors follows magic(4) + kind(1) + codec_len(1) + codec
    ntensors_at = 6 + frame[5]
    name_len_at = ntensors_at + 2

    lying_count = bytearray(body)
    struct.pack_into("<H", lying_count, ntensors_at, 400)
    with pytest.raises(PayloadCorruptedError):
        decode_state_dict(_reseal(lying_count))

    lying_name = bytearray(body)
    struct.pack_into("<H", lying_name, name_len_at, 60000)
    with pytest.raises(PayloadCorruptedError):
        decode_state_dict(_reseal(lying_name))


def test_wrong_kind_and_bad_magic_raise():
    rng = np.random.default_rng(5)
    update = ExpertUpdate(participant_id=1, layer=0, expert=0,
                          state=_make_state(rng, [(4,)], "<f8"), weight=1.0)
    frame = encode_update(update, get_codec("fp64"))
    with pytest.raises(PayloadCorruptedError):
        decode_state_dict(frame)  # update frame through the state-dict door
    with pytest.raises(PayloadCorruptedError):
        decode_update(_reseal(bytearray(b"XXXX" + frame[4:-4])))
    assert frame[:4] == MAGIC


# --------------------------------------------------------- fold bit-identity
@pytest.mark.parametrize("strategy", ["fedavg", "staleness_fedavg"])
def test_scratch_fold_bit_identical(strategy):
    rng = np.random.default_rng(21)
    codec = get_codec("fp64")
    frames = []
    for pid in range(6):
        update = ExpertUpdate(participant_id=pid, layer=0, expert=1,
                              state=_make_state(rng, SHAPES, "<f8"),
                              weight=float(pid % 3) + 0.5)
        frames.append(encode_update(update, codec))

    plain = StreamingAggregator(strategy)
    assert not plain.uses_scratch
    scratched = StreamingAggregator(strategy, scratch=ScratchPool())
    assert scratched.uses_scratch
    folded = StreamingAggregator(strategy, scratch=ScratchPool())
    for frame in frames:
        plain.add(decode_update(frame))
        scratched.add_payload(frame)
        folded.fold_payload(frame)

    want = plain.finalize()
    for other in (scratched.finalize(), folded.finalize()):
        assert want.keys() == other.keys()
        for key in want:
            for name in want[key]:
                got = other[key][name]
                assert got.dtype == want[key][name].dtype
                np.testing.assert_array_equal(want[key][name], got)


@pytest.mark.parametrize("strategy", ["trimmed_mean", "median"])
def test_buffering_strategies_refuse_scratch(strategy):
    aggregator = StreamingAggregator(strategy, scratch=ScratchPool())
    assert not aggregator.uses_scratch
    # and the fold still works (decoding without scratch) and matches plain
    rng = np.random.default_rng(9)
    codec = get_codec("fp64")
    plain = StreamingAggregator(strategy)
    for pid in range(5):
        update = ExpertUpdate(participant_id=pid, layer=0, expert=0,
                              state=_make_state(rng, [(6, 6)], "<f8"),
                              weight=1.0)
        frame = encode_update(update, codec)
        aggregator.fold_payload(frame)
        plain.add(decode_update(frame))
    want, got = plain.finalize(), aggregator.finalize()
    for key in want:
        for name in want[key]:
            np.testing.assert_array_equal(want[key][name], got[key][name])


# ------------------------------------------------------ stream view receive
def test_recv_frame_view_roundtrip_and_eof():
    left, right = socket.socketpair()
    try:
        frames = [b"alpha", b"", b"x" * 3000]
        sender = FrameStream(left)
        for frame in frames:
            sender.send_frame(frame)
        sender.close()
        stream = FrameStream(right)
        seen = []
        while True:
            view = stream.recv_frame_view()
            if view is None:
                break
            assert isinstance(view, memoryview)
            seen.append(bytes(view))  # copy: the view dies on the next recv
        assert seen == frames
    finally:
        right.close()


def test_recv_frame_view_buffer_is_reused():
    left, right = socket.socketpair()
    try:
        FrameStream(left).send_frame(b"first")
        FrameStream(left).send_frame(b"burst")
        stream = FrameStream(right)
        first = stream.recv_frame_view()
        assert bytes(first) == b"first"
        second = stream.recv_frame_view()
        assert bytes(second) == b"burst"
        # same storage, new contents: the first view is volatile by contract
        assert bytes(first) == b"burst"
    finally:
        left.close()
        right.close()


def test_recv_frame_view_decodes_in_place():
    frame, _ = _roundtrip_pair("fp64", "<f8", SHAPES)
    left, right = socket.socketpair()
    try:
        FrameStream(left).send_frame(frame)
        stream = FrameStream(right)
        view = stream.recv_frame_view()
        pool = ScratchPool()
        state = decode_state_dict(view, scratch=pool)
        fresh = decode_state_dict(frame)
        for name in fresh:
            np.testing.assert_array_equal(fresh[name], state[name])
    finally:
        left.close()
        right.close()
