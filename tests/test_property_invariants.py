"""Cross-cutting property-based tests of core invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import EpsilonSchedule, merge_weights, normalize_utilities, solve_candidate_selection
from repro.core.layer_budget import uniform_layer_budgets
from repro.data import Vocabulary
from repro.federated import fedavg_states
from repro.models import ExpertRemap
from repro.quantization import quantize_array

finite = st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False)
positive = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(arrays(np.float64, (3, 4), elements=finite), min_size=1, max_size=5),
    st.data(),
)
def test_fedavg_stays_within_convex_hull(states_list, data):
    """FedAvg of expert states is a convex combination: bounded by min/max inputs."""
    weights = data.draw(st.lists(st.floats(min_value=0.01, max_value=10.0),
                                 min_size=len(states_list), max_size=len(states_list)))
    states = [{"w": s} for s in states_list]
    averaged = fedavg_states(states, weights)["w"]
    stacked = np.stack(states_list)
    assert np.all(averaged <= stacked.max(axis=0) + 1e-9)
    assert np.all(averaged >= stacked.min(axis=0) - 1e-9)


@settings(max_examples=40, deadline=None)
@given(arrays(np.float64, (4, 8), elements=finite), st.sampled_from([2, 4, 8]))
def test_quantization_is_idempotent(weights, bits):
    """Quantizing an already-quantized matrix changes nothing."""
    once = quantize_array(weights, bits).dequantize()
    twice = quantize_array(once, bits).dequantize()
    assert np.allclose(once, twice, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=10_000))
def test_expert_remap_covers_all_slots(num_experts, seed):
    """Any remap built from a random tuning/cluster split covers every original id."""
    rng = np.random.default_rng(seed)
    ids = list(range(num_experts))
    rng.shuffle(ids)
    cut = rng.integers(0, num_experts + 1)
    tuning, rest = ids[:cut], ids[cut:]
    clusters = [rest] if rest else []
    remap, _, _ = ExpertRemap.from_clusters(num_experts, tuning, clusters)
    mapped = remap.apply(np.arange(num_experts))
    assert mapped.min() >= 0
    expected_slots = len(tuning) + len(clusters)
    assert mapped.max() < max(expected_slots, 1)


@settings(max_examples=40, deadline=None)
@given(st.dictionaries(st.tuples(st.integers(0, 3), st.integers(0, 7)), positive,
                       min_size=1, max_size=20),
       st.integers(min_value=1, max_value=10))
def test_candidate_selection_returns_highest_utilities(utilities, budget):
    selected = solve_candidate_selection(utilities, budget)
    assert len(selected) == min(budget, len(utilities))
    if len(selected) < len(utilities):
        threshold = min(utilities[key] for key in selected)
        unselected_max = max(utilities[key] for key in utilities if key not in selected)
        assert threshold >= unselected_max - 1e-12


@settings(max_examples=40, deadline=None)
@given(st.dictionaries(st.tuples(st.integers(0, 3), st.integers(0, 7)), positive,
                       min_size=1, max_size=20))
def test_normalized_utilities_bounded(utilities):
    normalized = normalize_utilities(utilities)
    assert all(0.0 <= value <= 1.0 for value in normalized.values())


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=0.0, max_value=1.0),
       st.integers(min_value=1, max_value=50))
def test_epsilon_schedule_monotone_and_bounded(initial, final, warmup):
    schedule = EpsilonSchedule(initial=initial, final=final, warmup_rounds=warmup)
    values = [schedule.value(r) for r in range(0, warmup * 2 + 1)]
    assert all(0.0 <= v <= 1.0 for v in values)
    if final >= initial:
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
    else:
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))
    assert values[-1] == pytest.approx(final)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=30),
       st.data())
def test_merge_weights_are_normalizable(num_members, seed, data):
    rng = np.random.default_rng(seed)
    frequencies = rng.random(16)
    attentions = rng.random(16)
    members = list(rng.choice(16, size=num_members, replace=False))
    strategy = data.draw(st.sampled_from(["average", "frequency", "attention_frequency"]))
    weights = merge_weights(members, frequencies, attentions, strategy)
    assert len(weights) == num_members
    assert np.all(weights >= 0)
    assert weights.sum() > 0


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=40))
def test_uniform_budgets_sum_exactly(num_layers, extra):
    total = num_layers + extra
    budgets = uniform_layer_budgets(total, num_layers)
    assert sum(budgets) == total
    assert max(budgets) - min(budgets) <= 1


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=64, max_value=512), st.integers(min_value=1, max_value=16))
def test_vocabulary_topic_blocks_partition_content(size, num_topics):
    try:
        vocab = Vocabulary(size=size, num_topics=num_topics)
    except ValueError:
        return  # too small for that many topics: rejection is the contract
    seen = set()
    for topic in range(num_topics):
        block = set(vocab.topic_block(topic))
        assert not (seen & block)
        seen |= block
    assert all(token >= vocab.content_start for token in seen)
