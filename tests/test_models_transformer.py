"""Tests for the MoE transformer LM: forward, loss, expert access, routing."""

import numpy as np
import pytest

from repro.autograd import Adam
from repro.models import MoEModelConfig, MoETransformer


@pytest.fixture()
def model(tiny_config):
    return MoETransformer(tiny_config)


@pytest.fixture()
def token_batch(tiny_config, rng):
    input_ids = np.random.default_rng(0).integers(0, tiny_config.vocab_size, size=(3, 12))
    mask = np.ones((3, 12), dtype=bool)
    mask[0, 9:] = False
    return input_ids, mask


class TestForward:
    def test_logit_shape(self, model, token_batch, tiny_config):
        input_ids, mask = token_batch
        logits = model(input_ids, attention_mask=mask)
        assert logits.shape == (3, 12, tiny_config.vocab_size)

    def test_single_sequence_promoted_to_batch(self, model, tiny_config):
        ids = np.arange(8) % tiny_config.vocab_size
        assert model(ids).shape == (1, 8, tiny_config.vocab_size)

    def test_sequence_length_limit(self, model, tiny_config):
        too_long = np.zeros((1, tiny_config.max_seq_len + 1), dtype=np.int64)
        with pytest.raises(ValueError):
            model(too_long)

    def test_untied_lm_head(self, tiny_config):
        config = MoEModelConfig(**{**tiny_config.__dict__, "tie_embeddings": False})
        model = MoETransformer(config)
        assert model.lm_head is not None
        ids = np.zeros((1, 4), dtype=np.int64)
        assert model(ids).shape == (1, 4, config.vocab_size)

    def test_forward_hidden_shape(self, model, token_batch, tiny_config):
        input_ids, mask = token_batch
        hidden = model.forward_hidden(input_ids, attention_mask=mask)
        assert hidden.shape == (3, 12, tiny_config.d_model)

    def test_greedy_generate_appends_tokens(self, model):
        prompt = np.array([1, 2, 3])
        out = model.greedy_generate(prompt, max_new_tokens=5)
        assert out.shape == (8,)
        assert np.array_equal(out[:3], prompt)


class TestLoss:
    def test_loss_is_scalar_and_positive(self, model, token_batch):
        input_ids, mask = token_batch
        loss = model.compute_loss(input_ids, attention_mask=mask)
        assert loss.size == 1
        assert loss.item() > 0

    def test_loss_with_explicit_labels(self, model, token_batch):
        input_ids, mask = token_batch
        labels = np.full_like(input_ids, -100)
        labels[:, 0] = input_ids[:, 1]
        loss = model.compute_loss(input_ids, labels=labels, attention_mask=mask)
        assert np.isfinite(loss.item())

    def test_expert_only_training_reduces_loss(self, model, token_batch):
        input_ids, mask = token_batch
        model.freeze_non_expert_parameters()
        params = [p for p in model.parameters() if p.requires_grad]
        optimizer = Adam(params, lr=1e-2)
        initial = None
        for _ in range(8):
            optimizer.zero_grad()
            loss = model.compute_loss(input_ids, attention_mask=mask)
            if initial is None:
                initial = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < initial

    def test_non_expert_parameters_receive_no_gradient_when_frozen(self, model, token_batch):
        input_ids, mask = token_batch
        model.freeze_non_expert_parameters()
        loss = model.compute_loss(input_ids, attention_mask=mask)
        loss.backward()
        assert model.token_embedding.weight.grad is None
        for block in model.blocks:
            assert block.attn.q_proj.weight.grad is None


class TestExpertAccess:
    def test_iter_expert_ids_counts(self, model, tiny_config):
        keys = list(model.iter_expert_ids())
        assert len(keys) == tiny_config.total_experts

    def test_expert_state_roundtrip(self, model):
        state = model.expert_state(0, 1)
        state = {k: v * 0.0 for k, v in state.items()}
        model.load_expert_state(0, 1, state)
        assert np.allclose(model.get_expert(0, 1).w_gate.weight.data, 0.0)

    def test_set_expert_trainable(self, model):
        model.freeze_non_expert_parameters()
        model.set_expert_trainable(0, 0, False)
        assert all(not p.requires_grad for p in model.get_expert(0, 0).parameters())
        model.set_expert_trainable(0, 0, True)
        assert all(p.requires_grad for p in model.get_expert(0, 0).parameters())

    def test_parameter_breakdown_sums(self, model):
        breakdown = model.parameter_breakdown()
        assert breakdown["total"] == breakdown["experts"] + breakdown["non_expert"]
        assert breakdown["experts"] > breakdown["non_expert"]


class TestRoutingRecords:
    def test_records_available_after_forward(self, model, token_batch):
        input_ids, mask = token_batch
        model(input_ids, attention_mask=mask, sample_ids=np.array([5, 6, 7]))
        records = model.routing_records()
        assert len(records) == model.num_layers
        assert all(record.total_tokens > 0 for record in records)

    def test_activation_frequencies_are_distributions(self, model, token_batch):
        input_ids, mask = token_batch
        model(input_ids, attention_mask=mask)
        for freq in model.activation_frequencies():
            assert freq.shape[0] == model.experts_per_layer()[0]
            assert freq.sum() == pytest.approx(1.0)

    def test_accumulated_records(self, model, token_batch):
        input_ids, mask = token_batch
        model.set_routing_accumulation(True)
        model(input_ids, attention_mask=mask)
        model(input_ids, attention_mask=mask)
        accumulated = model.routing_records(accumulated=True)
        single = model.routing_records(accumulated=False)
        assert accumulated[0].total_tokens == 2 * single[0].total_tokens
        model.set_routing_accumulation(False)

    def test_empty_records_before_any_forward(self, tiny_config):
        fresh = MoETransformer(tiny_config)
        records = fresh.routing_records()
        assert all(record.total_tokens == 0 for record in records)


class TestDeterminism:
    def test_same_seed_same_parameters(self, tiny_config):
        a = MoETransformer(tiny_config)
        b = MoETransformer(tiny_config)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.allclose(pa.data, pb.data)

    def test_forward_is_deterministic(self, model, token_batch):
        input_ids, mask = token_batch
        out1 = model(input_ids, attention_mask=mask).data
        out2 = model(input_ids, attention_mask=mask).data
        assert np.allclose(out1, out2)
