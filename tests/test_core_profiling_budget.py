"""Tests for quantized/stale profiling and adaptive layer budgets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Adam
from repro.core import (
    FluxConfig,
    QuantizedProfiler,
    StaleProfiler,
    adaptive_layer_budgets,
    layer_budgets,
    single_expert_budgets,
    uniform_layer_budgets,
)
from repro.models.presets import ARCHITECTURE_DESCRIPTORS
from repro.systems import CONSUMER_GPU, CostModel, MemoryModel


class TestFluxConfigValidation:
    def test_defaults_valid(self):
        config = FluxConfig()
        assert config.profiling_bits == 4
        assert config.stale_profiling

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            FluxConfig(layer_budget_strategy="random")
        with pytest.raises(ValueError):
            FluxConfig(merging_strategy="sum")
        with pytest.raises(ValueError):
            FluxConfig(clustering_mode="global")
        with pytest.raises(ValueError):
            FluxConfig(profiling_bits=7)
        with pytest.raises(ValueError):
            FluxConfig(utility_smoothing=2.0)
        with pytest.raises(ValueError):
            FluxConfig(exploration_perturbations=0)

    def test_epsilon_schedule_validation(self):
        from repro.core import EpsilonSchedule
        with pytest.raises(ValueError):
            EpsilonSchedule(initial=1.5)
        with pytest.raises(ValueError):
            EpsilonSchedule(warmup_rounds=0)

    def test_epsilon_schedule_dynamic_growth(self):
        from repro.core import EpsilonSchedule
        schedule = EpsilonSchedule(initial=0.3, final=0.9, warmup_rounds=10)
        assert schedule.value(0) == pytest.approx(0.3)
        assert schedule.value(5) == pytest.approx(0.6)
        assert schedule.value(50) == pytest.approx(0.9)

    def test_epsilon_schedule_fixed(self):
        from repro.core import EpsilonSchedule
        schedule = EpsilonSchedule.fixed(0.7)
        assert schedule.value(0) == schedule.value(100) == pytest.approx(0.7)


class TestQuantizedProfiler:
    def test_bit_validation(self):
        with pytest.raises(ValueError):
            QuantizedProfiler(bits=6)

    def test_profile_matches_reference_layer_count(self, tiny_model, gsm_batches):
        profiler = QuantizedProfiler(bits=4)
        outcome = profiler.profile(tiny_model, gsm_batches)
        assert outcome.profile.num_layers == tiny_model.num_layers
        assert not outcome.stale
        assert outcome.num_tokens > 0

    def test_cost_accounting_attached(self, tiny_model, gsm_batches):
        cost = CostModel(CONSUMER_GPU, MemoryModel(ARCHITECTURE_DESCRIPTORS["llama-moe"]))
        outcome = QuantizedProfiler(bits=2).profile(tiny_model, gsm_batches, cost_model=cost)
        assert outcome.profiling_seconds > 0
        assert outcome.quantization_seconds > 0

    def test_max_batches_respected(self, tiny_model, gsm_batches):
        profiler = QuantizedProfiler(bits=4, max_batches=1)
        outcome = profiler.profile(tiny_model, gsm_batches)
        assert outcome.num_tokens == gsm_batches[0].num_tokens

    def test_requires_batches(self, tiny_model):
        with pytest.raises(ValueError):
            QuantizedProfiler(bits=4).profile(tiny_model, [])

    def test_higher_precision_closer_to_reference(self, tiny_model, gsm_batches):
        from repro.analysis import estimation_error
        reference = QuantizedProfiler(bits=4).reference_profile(tiny_model, gsm_batches)
        low = QuantizedProfiler(bits=2).profile(tiny_model, gsm_batches).profile
        high = QuantizedProfiler(bits=8).profile(tiny_model, gsm_batches).profile
        assert estimation_error(reference, high) <= estimation_error(reference, low) + 1e-9


class TestStaleProfiler:
    def test_first_round_returns_fresh(self, tiny_model, gsm_batches):
        profiler = StaleProfiler(bits=4, enabled=True)
        outcome = profiler.profile_for_round(tiny_model, gsm_batches)
        assert not outcome.stale

    def test_second_round_returns_previous_profile(self, tiny_model, gsm_batches):
        profiler = StaleProfiler(bits=4, enabled=True)
        first = profiler.profile_for_round(tiny_model, gsm_batches)
        # perturb the model so a fresh profile would differ
        optimizer = Adam(list(tiny_model.parameters()), lr=5e-2)
        loss = tiny_model.compute_loss(gsm_batches[0].input_ids,
                                       labels=gsm_batches[0].labels,
                                       attention_mask=gsm_batches[0].attention_mask)
        loss.backward()
        optimizer.step()
        second = profiler.profile_for_round(tiny_model, gsm_batches)
        assert second.stale
        for fa, fb in zip(first.profile.frequencies, second.profile.frequencies):
            assert np.allclose(fa, fb)

    def test_disabled_stale_profiling_always_fresh(self, tiny_model, gsm_batches):
        profiler = StaleProfiler(bits=4, enabled=False)
        profiler.profile_for_round(tiny_model, gsm_batches)
        second = profiler.profile_for_round(tiny_model, gsm_batches)
        assert not second.stale

    def test_staleness_error_is_finite(self, tiny_model, gsm_batches):
        profiler = StaleProfiler(bits=4, enabled=True)
        assert profiler.staleness_error(tiny_model, gsm_batches) == 0.0
        profiler.profile_for_round(tiny_model, gsm_batches)
        error = profiler.staleness_error(tiny_model, gsm_batches)
        assert np.isfinite(error)


class TestLayerBudgets:
    def _frequencies(self, skew_first=True):
        skewed = np.array([0.7, 0.1, 0.1, 0.1])
        balanced = np.array([0.25, 0.25, 0.25, 0.25])
        return [skewed if skew_first else balanced, balanced]

    def test_adaptive_budget_sums_to_total(self):
        budgets = adaptive_layer_budgets(6, self._frequencies())
        assert sum(budgets) == 6
        assert all(b >= 1 for b in budgets)

    def test_adaptive_budget_capped_by_capacity_and_redistributed(self):
        # two layers with 4 experts each can absorb at most 8 merged slots
        budgets = adaptive_layer_budgets(10, self._frequencies())
        assert sum(budgets) == 8
        assert all(1 <= b <= 4 for b in budgets)

    def test_adaptive_prefers_early_layers(self):
        balanced = [np.full(4, 0.25) for _ in range(4)]
        budgets = adaptive_layer_budgets(12, balanced)
        assert budgets[0] >= budgets[-1]

    def test_adaptive_prefers_balanced_layers(self):
        frequencies = self._frequencies(skew_first=True)
        budgets = adaptive_layer_budgets(10, frequencies)
        # layer 1 (balanced, later) can still beat layer 0 (skewed, earlier)
        # when skew dominates the depth weight; at minimum the skewed layer
        # should not receive the whole budget
        assert budgets[0] < 10

    def test_uniform_budget_even_split(self):
        budgets = uniform_layer_budgets(8, 4)
        assert budgets == [2, 2, 2, 2]

    def test_single_budget(self):
        assert single_expert_budgets(3) == [1, 1, 1]
        with pytest.raises(ValueError):
            single_expert_budgets(0)

    def test_budget_too_small_rejected(self):
        with pytest.raises(ValueError):
            adaptive_layer_budgets(1, self._frequencies())

    def test_budget_capped_by_layer_expert_count(self):
        frequencies = [np.full(2, 0.5), np.full(8, 0.125)]
        budgets = adaptive_layer_budgets(12, frequencies)
        assert budgets[0] <= 2

    def test_dispatch_by_strategy(self):
        frequencies = self._frequencies()
        assert sum(layer_budgets("adaptive", 5, frequencies)) == 5
        assert layer_budgets("uniform", 6, frequencies) == [3, 3]
        assert layer_budgets("single", 6, frequencies) == [1, 1]
        with pytest.raises(ValueError):
            layer_budgets("other", 6, frequencies)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=0, max_value=10_000),
)
def test_adaptive_budget_properties(num_layers, extra_budget, seed):
    """Adaptive budgets always sum to the requested total and respect floors."""
    rng = np.random.default_rng(seed)
    frequencies = []
    for _ in range(num_layers):
        raw = rng.random(6) + 1e-3
        frequencies.append(raw / raw.sum())
    total = num_layers + extra_budget
    budgets = adaptive_layer_budgets(total, frequencies)
    assert sum(budgets) <= total
    assert all(1 <= b <= 6 for b in budgets)
